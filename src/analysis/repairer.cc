#include "analysis/repairer.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <utility>

#include "dvq/normalize.h"
#include "util/strings.h"

namespace gred::analysis {
namespace {

/// Stable identity of one diagnostic across re-analyses: a rejected
/// repair retires exactly this key, and an accepted repair must make it
/// disappear.
std::string DiagnosticKey(const Diagnostic& d) {
  return std::string(CodeName(d.code)) + "|" + d.location.ToString() + "|" +
         d.message;
}

/// Navigates to the query node `path` points at, cloning each subquery
/// on the way down (subqueries are shared immutable trees — mutating a
/// fresh copy preserves that contract for every other holder).
dvq::Query* TargetQuery(dvq::DVQ* dvq, const std::vector<std::size_t>& path) {
  dvq::Query* q = &dvq->query;
  for (std::size_t pred : path) {
    if (!q->where.has_value() || pred >= q->where->predicates.size()) {
      return nullptr;
    }
    dvq::Predicate& p = q->where->predicates[pred];
    if (p.subquery == nullptr) return nullptr;
    auto clone = std::make_shared<dvq::Query>(*p.subquery);
    p.subquery = clone;
    q = clone.get();
  }
  return q;
}

/// Applies `fn` to every column reference of this query node only
/// (subqueries have their own scopes and their own diagnostics).
void ForEachLocalColumnRef(dvq::Query* q,
                           const std::function<void(dvq::ColumnRef*)>& fn) {
  for (dvq::SelectExpr& e : q->select) fn(&e.col);
  for (dvq::JoinClause& j : q->joins) {
    fn(&j.left);
    fn(&j.right);
  }
  if (q->where.has_value()) {
    for (dvq::Predicate& p : q->where->predicates) fn(&p.col);
  }
  for (dvq::ColumnRef& g : q->group_by) fn(&g);
  if (q->order_by.has_value()) fn(&q->order_by->expr.col);
  if (q->bin.has_value()) fn(&q->bin->col);
}

/// Extracts the offending column name from an unknown-column message
/// ("... column 'NAME' ..."), empty when the shape is unexpected.
std::string ColumnNameFromMessage(const std::string& message) {
  const std::string marker = "column '";
  std::size_t start = message.find(marker);
  if (start == std::string::npos) return "";
  start += marker.size();
  std::size_t end = message.find('\'', start);
  if (end == std::string::npos) return "";
  return message.substr(start, end - start);
}

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

}  // namespace

std::string RepairAction::ToString() const {
  return std::string(CodeName(code)) + " " + location.ToString() + ": " +
         description;
}

DvqRepairer::DvqRepairer(const schema::Database* db, RepairOptions options)
    : db_(db), analyzer_(db, options.analyzer), options_(options) {}

bool DvqRepairer::ApplyFix(const Diagnostic& d, dvq::DVQ* dvq,
                           std::string* description) const {
  dvq::Query* q = TargetQuery(dvq, d.location.path);
  if (q == nullptr) return false;
  const Clause clause = d.location.clause;
  const std::size_t index = d.location.index;

  switch (d.code) {
    case Code::kUnknownTable: {
      if (d.fixit.empty()) return false;
      std::string* table = nullptr;
      if (clause == Clause::kFrom) {
        table = &q->from_table;
      } else if (clause == Clause::kJoin && index < q->joins.size()) {
        table = &q->joins[index].table;
      }
      if (table == nullptr) return false;
      const std::string old_name = *table;
      *table = d.fixit;
      // Qualifiers naming the old spelling must follow the rename or
      // every reference dangles.
      ForEachLocalColumnRef(q, [&](dvq::ColumnRef* ref) {
        if (strings::EqualsIgnoreCase(ref->table, old_name)) {
          ref->table = d.fixit;
        }
      });
      *description = "replaced table " + Quoted(old_name) + " with " +
                     Quoted(d.fixit);
      return true;
    }

    case Code::kUnknownColumn: {
      if (d.fixit.empty()) return false;
      std::string* column = nullptr;
      switch (clause) {
        case Clause::kSelect:
          if (index < q->select.size()) column = &q->select[index].col.column;
          break;
        case Clause::kOrderBy:
          if (q->order_by.has_value()) {
            column = &q->order_by->expr.col.column;
          }
          break;
        case Clause::kGroupBy:
          if (index < q->group_by.size()) column = &q->group_by[index].column;
          break;
        case Clause::kBin:
          if (q->bin.has_value()) column = &q->bin->col.column;
          break;
        case Clause::kWhere:
          if (q->where.has_value() && index < q->where->predicates.size()) {
            column = &q->where->predicates[index].col.column;
          }
          break;
        case Clause::kJoin: {
          // Both join keys share the location; the message names the
          // offending one.
          if (index >= q->joins.size()) break;
          const std::string bad = ColumnNameFromMessage(d.message);
          if (bad.empty()) break;
          dvq::JoinClause& join = q->joins[index];
          if (strings::EqualsIgnoreCase(join.left.column, bad)) {
            column = &join.left.column;
          } else if (strings::EqualsIgnoreCase(join.right.column, bad)) {
            column = &join.right.column;
          }
          break;
        }
        default:
          break;
      }
      if (column == nullptr) return false;
      const std::string old_name = *column;
      *column = d.fixit;
      *description = "replaced column " + Quoted(old_name) + " with " +
                     Quoted(d.fixit);
      return true;
    }

    case Code::kAggTypeMismatch:
    case Code::kAggStarMisuse: {
      // COUNT is defined for every type and for the star target.
      dvq::SelectExpr* e = nullptr;
      if (clause == Clause::kSelect && index < q->select.size()) {
        e = &q->select[index];
      } else if (clause == Clause::kOrderBy && q->order_by.has_value()) {
        e = &q->order_by->expr;
      }
      if (e == nullptr || e->agg == dvq::AggFunc::kCount) return false;
      *description = "replaced " + std::string(dvq::AggFuncName(e->agg)) +
                     "(" + e->col.ToString() + ") with COUNT";
      e->agg = dvq::AggFunc::kCount;
      return true;
    }

    case Code::kGroupByInconsistency: {
      if (clause != Clause::kSelect || index >= q->select.size()) return false;
      const dvq::ColumnRef& col = q->select[index].col;
      q->group_by.push_back(col);
      *description = "added " + Quoted(col.ToString()) + " to GROUP BY";
      return true;
    }

    case Code::kBinNonTemporal: {
      if (!q->bin.has_value()) return false;
      // Retarget to the unique temporal column in scope, if any; with
      // zero or several candidates the bin is dropped instead of
      // guessed at.
      std::vector<dvq::ColumnRef> temporal;
      auto collect = [&](const std::string& table_name) {
        const schema::TableDef* table = db_->FindTable(table_name);
        if (table == nullptr) return;
        for (const schema::Column& c : table->columns()) {
          if (c.type == schema::ColumnType::kDate) {
            dvq::ColumnRef ref;
            ref.table = table->name();
            ref.column = c.name;
            temporal.push_back(ref);
          }
        }
      };
      collect(q->from_table);
      for (const dvq::JoinClause& j : q->joins) collect(j.table);
      if (temporal.size() == 1) {
        *description = "retargeted BIN from " + Quoted(q->bin->col.ToString()) +
                       " to " + Quoted(temporal[0].ToString());
        q->bin->col = temporal[0];
      } else {
        *description = "removed BIN over non-temporal " +
                       Quoted(q->bin->col.ToString());
        q->bin.reset();
      }
      return true;
    }

    case Code::kChartAxisMismatch: {
      if (q->select.size() < 2) return false;
      std::swap(q->select[0], q->select[1]);
      *description = "swapped x and y axes";
      return true;
    }

    case Code::kOrderByNotProjected: {
      if (!q->order_by.has_value()) return false;
      const std::string old_expr = q->order_by->expr.ToString();
      for (const dvq::SelectExpr& s : q->select) {
        if (s.ToString() == d.fixit) {
          q->order_by->expr = s;
          *description = "retargeted ORDER BY from " + Quoted(old_expr) +
                         " to " + Quoted(d.fixit);
          return true;
        }
      }
      q->order_by.reset();
      *description = "dropped ORDER BY " + Quoted(old_expr);
      return true;
    }

    case Code::kDuplicateSelectItem: {
      // Dropping below two select items would destroy the chart's axes.
      if (clause != Clause::kSelect || index >= q->select.size() ||
          q->select.size() <= 2) {
        return false;
      }
      *description = "removed duplicate select item " +
                     Quoted(q->select[index].ToString());
      q->select.erase(q->select.begin() +
                      static_cast<std::ptrdiff_t>(index));
      return true;
    }

    case Code::kJoinNotForeignKey: {
      // The fix-it is the declared FK predicate "t1.c1 = t2.c2".
      if (d.fixit.empty() || index >= q->joins.size()) return false;
      const std::size_t eq = d.fixit.find(" = ");
      if (eq == std::string::npos) return false;
      auto parse_ref = [](const std::string& text) {
        dvq::ColumnRef ref;
        const std::size_t dot = text.find('.');
        if (dot == std::string::npos) {
          ref.column = text;
        } else {
          ref.table = text.substr(0, dot);
          ref.column = text.substr(dot + 1);
        }
        return ref;
      };
      dvq::JoinClause& join = q->joins[index];
      *description = "replaced join predicate " +
                     Quoted(join.left.ToString() + " = " +
                            join.right.ToString()) +
                     " with " + Quoted(d.fixit);
      join.left = parse_ref(d.fixit.substr(0, eq));
      join.right = parse_ref(d.fixit.substr(eq + 3));
      return true;
    }

    case Code::kJoinTypeMismatch:
    case Code::kAlwaysFalsePredicate:
    case Code::kComparisonTypeMismatch:
      // No machine-applicable fix: the intended predicate is unknowable.
      return false;
  }
  return false;
}

RepairResult DvqRepairer::Repair(const dvq::DVQ& input) const {
  RepairResult result;
  dvq::DVQ current = input;
  // Diagnostics are emitted against the alias-resolved form, so repairs
  // must edit that form for locations to line up.
  current.query = dvq::ResolveAliases(input.query);

  std::set<std::string> failed_keys;
  std::set<std::string> seen_forms;
  seen_forms.insert(current.ToString());
  std::vector<Diagnostic> diagnostics = analyzer_.Analyze(current);
  std::size_t accepted = 0;

  while (accepted < options_.max_repairs) {
    // Name repairs (DVQ001/002) go first: a structural diagnostic
    // raised while a name is still misspelled is often an artifact of
    // the misspelling (e.g. "select[0] not grouped" because GROUP BY
    // names the broken spelling), and fixing names first makes it
    // vanish instead of being patched around.
    const Diagnostic* target = nullptr;
    const Diagnostic* fallback = nullptr;
    for (const Diagnostic& d : diagnostics) {
      if (failed_keys.count(DiagnosticKey(d)) != 0) continue;
      if (d.code == Code::kUnknownTable || d.code == Code::kUnknownColumn) {
        target = &d;
        break;
      }
      if (fallback == nullptr) fallback = &d;
    }
    if (target == nullptr) target = fallback;
    if (target == nullptr) break;
    const std::string key = DiagnosticKey(*target);

    dvq::DVQ candidate = current;
    std::string description;
    if (!ApplyFix(*target, &candidate, &description)) {
      failed_keys.insert(key);
      continue;
    }
    const std::string form = candidate.ToString();
    if (seen_forms.count(form) != 0) {
      // Cycle (e.g. an axis swap that swaps back): reject.
      failed_keys.insert(key);
      continue;
    }
    std::vector<Diagnostic> next = analyzer_.Analyze(candidate);
    const bool still_present =
        std::any_of(next.begin(), next.end(), [&key](const Diagnostic& d) {
          return DiagnosticKey(d) == key;
        });
    if (still_present) {
      failed_keys.insert(key);
      continue;
    }

    RepairAction action;
    action.code = target->code;
    action.location = target->location;
    action.description = std::move(description);
    result.log.push_back(std::move(action));
    current = std::move(candidate);
    seen_forms.insert(form);
    diagnostics = std::move(next);
    ++accepted;
  }

  result.success = !HasErrors(diagnostics);
  if (result.success) {
    result.changed = accepted > 0;
    result.dvq = std::move(current);
    result.remaining = std::move(diagnostics);
  } else {
    // Never worsen: hand back the untouched input.
    result.changed = false;
    result.dvq = input;
    result.remaining = analyzer_.Analyze(input);
  }
  return result;
}

}  // namespace gred::analysis
