#include "analysis/cost_estimator.h"

#include <algorithm>
#include <cstddef>

#include "dvq/normalize.h"
#include "util/strings.h"

namespace gred::analysis {
namespace {

// Saturating arithmetic: a statically-unbounded query (cross-join
// towers) must price as "enormous", not wrap to a small number.
std::uint64_t SatAdd(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r = 0;
  return __builtin_add_overflow(a, b, &r) ? UINT64_MAX : r;
}

std::uint64_t SatMul(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r = 0;
  return __builtin_mul_overflow(a, b, &r) ? UINT64_MAX : r;
}

void Accumulate(const CostEstimate& part, std::uint64_t times,
                CostEstimate* total) {
  total->ticks = SatAdd(total->ticks, SatMul(times, part.ticks));
  total->rows = SatAdd(total->rows, SatMul(times, part.rows));
  total->bytes = SatAdd(total->bytes, SatMul(times, part.bytes));
  total->join_rows = SatAdd(total->join_rows, SatMul(times, part.join_rows));
}

/// Mirror of the executors' shared SlotBinding resolution (first slot in
/// table-add order whose column name matches, table qualifier honored),
/// lifted to (table, column-index) pairs so statistics can be attributed.
struct ScopeSlot {
  std::size_t table_index = 0;   // into DatabaseData::tables()
  std::size_t column_index = 0;  // into that table's columns
};

class Scope {
 public:
  explicit Scope(const storage::DatabaseData* db) : db_(db) {}

  void AddTable(std::size_t table_index) { tables_.push_back(table_index); }

  std::optional<ScopeSlot> Resolve(const dvq::ColumnRef& ref) const {
    for (std::size_t t : tables_) {
      const storage::DataTable& table = db_->tables()[t];
      if (!ref.table.empty() &&
          !strings::EqualsIgnoreCase(table.name(), ref.table)) {
        continue;
      }
      const auto& columns = table.def().columns();
      for (std::size_t c = 0; c < columns.size(); ++c) {
        if (strings::EqualsIgnoreCase(columns[c].name, ref.column)) {
          return ScopeSlot{t, c};
        }
      }
    }
    return std::nullopt;
  }

 private:
  const storage::DatabaseData* db_;
  std::vector<std::size_t> tables_;
};

std::optional<std::size_t> TableIndex(const storage::DatabaseData& db,
                                      const std::string& name) {
  for (std::size_t i = 0; i < db.tables().size(); ++i) {
    if (strings::EqualsIgnoreCase(db.tables()[i].name(), name)) return i;
  }
  return std::nullopt;
}

/// Conservative mirror of the executor's OrderMatchesSelect: returns
/// true only when the executor provably unifies the ORDER BY expression
/// with `sel` (no hidden column). When unsure it returns false, which
/// only ever widens the estimate.
bool ProvablyUnifies(const dvq::SelectExpr& sel, const dvq::SelectExpr& order) {
  if (sel.agg != order.agg || sel.distinct != order.distinct) return false;
  if (sel.col.column == "*" || order.col.column == "*") {
    return sel.col.EqualsIgnoreCase(order.col);
  }
  if (order.col.table.empty()) {
    return strings::EqualsIgnoreCase(sel.col.column, order.col.column);
  }
  return sel.col.EqualsIgnoreCase(order.col);
}

}  // namespace

bool CostEstimate::Exceeds(const GuardLimits& limits) const {
  return !ExceededBudget(limits).empty();
}

std::string CostEstimate::ExceededBudget(const GuardLimits& limits) const {
  if (limits.deadline_ticks != 0 && ticks > limits.deadline_ticks) {
    return "deadline";
  }
  if (limits.row_budget != 0 && rows > limits.row_budget) return "rows";
  if (limits.memory_budget != 0 && bytes > limits.memory_budget) {
    return "memory";
  }
  if (limits.join_budget != 0 && join_rows > limits.join_budget) {
    return "joins";
  }
  return "";
}

std::string CostEstimate::ToString() const {
  return strings::Format("ticks=%llu rows=%llu bytes=%llu join_rows=%llu",
                         static_cast<unsigned long long>(ticks),
                         static_cast<unsigned long long>(rows),
                         static_cast<unsigned long long>(bytes),
                         static_cast<unsigned long long>(join_rows));
}

CostEstimator::CostEstimator(const storage::DatabaseData* db)
    : db_(db), cache_(db->tables().size()) {}

const storage::DataTable::TableStats& CostEstimator::StatsFor(
    std::size_t table_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<storage::DataTable::TableStats>& slot = cache_[table_index];
  if (!slot.has_value()) slot = db_->tables()[table_index].Stats();
  return *slot;
}

Result<CostEstimate> CostEstimator::Estimate(const dvq::DVQ& dvq) const {
  return EstimateQuery(dvq::ResolveAliases(dvq.query));
}

Result<CostEstimate> CostEstimator::EstimateQuery(const dvq::Query& q) const {
  CostEstimate total;
  Scope scope(db_);

  // Scan: one tick and one materialized row per stored row.
  std::optional<std::size_t> from = TableIndex(*db_, q.from_table);
  if (!from.has_value()) {
    return Status::NotFound("unknown table '" + q.from_table + "'");
  }
  scope.AddTable(*from);
  const storage::DataTable& from_table = db_->tables()[*from];
  std::uint64_t live_rows = from_table.num_rows();
  std::uint64_t width = from_table.num_columns();
  total.ticks = SatAdd(total.ticks, live_rows);
  total.rows = SatAdd(total.rows, live_rows);
  total.bytes = SatAdd(total.bytes,
                       SatMul(live_rows, SatMul(width, kAccountedBytesPerCell)));

  // Joins fold left: the accumulated side probes, the fresh right table
  // builds. Ticks: hash join pays L+R (build rows are charged even when
  // the probe side is empty), nested-loop pays up to L*R — the max
  // covers both strategies. Matches: each probe row meets at most
  // max_count(build column) build rows.
  for (const dvq::JoinClause& join : q.joins) {
    std::optional<std::size_t> right = TableIndex(*db_, join.table);
    if (!right.has_value()) {
      return Status::NotFound("unknown table '" + join.table + "'");
    }
    const storage::DataTable& right_table = db_->tables()[*right];
    dvq::ColumnRef probe = join.left;
    dvq::ColumnRef build = join.right;
    if (!scope.Resolve(probe).has_value()) std::swap(probe, build);
    if (!scope.Resolve(probe).has_value()) {
      return Status::NotFound("join key '" + probe.ToString() +
                              "' resolves in neither side");
    }
    // The build key must resolve within the joined table alone.
    Scope right_scope(db_);
    right_scope.AddTable(*right);
    std::optional<ScopeSlot> build_slot = right_scope.Resolve(build);
    if (!build_slot.has_value()) {
      return Status::NotFound("join key '" + build.ToString() +
                              "' not in table '" + join.table + "'");
    }
    const std::uint64_t right_rows = right_table.num_rows();
    const std::uint64_t max_count =
        StatsFor(*right).columns[build_slot->column_index].max_count;
    const std::uint64_t matches = std::min(
        SatMul(live_rows, right_rows), SatMul(live_rows, max_count));
    const std::uint64_t merged_width =
        SatAdd(width, right_table.num_columns());
    total.ticks = SatAdd(total.ticks,
                         std::max(SatAdd(live_rows, right_rows),
                                  SatMul(live_rows, right_rows)));
    total.join_rows = SatAdd(total.join_rows, matches);
    total.rows = SatAdd(total.rows, matches);
    total.bytes = SatAdd(
        total.bytes,
        SatMul(matches, SatMul(merged_width, kAccountedBytesPerCell)));
    live_rows = matches;
    width = merged_width;
    scope.AddTable(*right);
  }

  // Filter: one tick per input row; the row engine re-executes every
  // scalar subquery per row (the columnar engine hoists them, charging
  // strictly less). Selectivity is bounded by 1: every row may survive.
  if (q.where.has_value()) {
    total.ticks = SatAdd(total.ticks, live_rows);
    for (const dvq::Predicate& p : q.where->predicates) {
      if (p.subquery == nullptr) continue;
      GRED_ASSIGN_OR_RETURN(CostEstimate sub, EstimateQuery(*p.subquery));
      Accumulate(sub, live_rows, &total);
    }
  }

  // Bin: one tick per row.
  if (q.bin.has_value()) total.ticks = SatAdd(total.ticks, live_rows);

  // Group / project. The hidden ORDER BY column exists exactly when the
  // executor fails to unify the sort expression with a select item;
  // ProvablyUnifies under-approximates unification, so `hidden` may be
  // conservatively true but never falsely false.
  bool hidden = false;
  if (q.order_by.has_value()) {
    hidden = !std::any_of(q.select.begin(), q.select.end(),
                          [&](const dvq::SelectExpr& s) {
                            return ProvablyUnifies(s, q.order_by->expr);
                          });
  }
  std::uint64_t computed_width = q.select.size() + (hidden ? 1 : 0);
  bool has_aggregate =
      std::any_of(q.select.begin(), q.select.end(),
                  [](const dvq::SelectExpr& e) {
                    return e.agg != dvq::AggFunc::kNone;
                  }) ||
      (q.order_by.has_value() &&
       q.order_by->expr.agg != dvq::AggFunc::kNone);

  std::uint64_t out_rows = 0;
  if (has_aggregate || !q.group_by.empty()) {
    total.ticks = SatAdd(total.ticks, live_rows);
    // Group count: bounded by input rows and by the product of the key
    // columns' base distinct counts (joins, filters and bins never
    // enlarge a column's distinct set).
    std::vector<dvq::ColumnRef> keys = q.group_by;
    if (keys.empty()) {
      for (const dvq::SelectExpr& e : q.select) {
        if (e.agg == dvq::AggFunc::kNone) keys.push_back(e.col);
      }
    }
    std::uint64_t distinct_product = 1;
    for (const dvq::ColumnRef& key : keys) {
      std::optional<ScopeSlot> slot = scope.Resolve(key);
      if (!slot.has_value()) {
        distinct_product = UINT64_MAX;  // unknown key: fall back to rows
        break;
      }
      distinct_product = SatMul(
          distinct_product,
          StatsFor(slot->table_index).columns[slot->column_index].distinct);
    }
    const std::uint64_t groups = std::min(live_rows, distinct_product);
    const std::uint64_t group_width = SatAdd(keys.size(), computed_width);
    total.rows = SatAdd(total.rows, groups);
    total.bytes = SatAdd(
        total.bytes,
        SatMul(groups, SatMul(group_width, kAccountedBytesPerCell)));
    out_rows = groups;
  } else {
    // Pure projection: one tick and one output row per input row.
    total.ticks = SatAdd(total.ticks, live_rows);
    total.rows = SatAdd(total.rows, live_rows);
    total.bytes = SatAdd(
        total.bytes,
        SatMul(live_rows, SatMul(computed_width, kAccountedBytesPerCell)));
    out_rows = live_rows;
  }

  // Order: one tick per output row, charged before the sort.
  if (q.order_by.has_value()) {
    total.ticks = SatAdd(total.ticks, out_rows);
  }
  return total;
}

}  // namespace gred::analysis
