#include "llm/prompt.h"

#include "util/strings.h"

namespace gred::llm {

namespace {

constexpr char kChartTypeLine[] =
    "### Chart Type: [ BAR , PIE , LINE , SCATTER , STACKED BAR , "
    "GROUPING LINE , GROUPING SCATTER ]\n";

}  // namespace

std::string RenderPrompt(const Prompt& prompt) {
  std::string out;
  for (const ChatMessage& m : prompt) {
    switch (m.role) {
      case ChatMessage::Role::kSystem:
        out += "Role: SYSTEM\n";
        break;
      case ChatMessage::Role::kUser:
        out += "Role: USER\n";
        break;
      case ChatMessage::Role::kAssistant:
        out += "Role: ASSISTANT\n";
        break;
    }
    out += "Content:\n" + m.content + "\n\n";
  }
  return out;
}

Prompt BuildAnnotationPrompt(const schema::Database& db) {
  Prompt prompt;
  prompt.push_back(
      {ChatMessage::Role::kSystem,
       "You are a data mining engineer with ten years of experience in "
       "data visualization."});
  std::string user =
      "#### Please generate detailed natural language annotations to the "
      "following database schemas.\n\n"
      "### Database Schemas:\n";
  user += db.RenderSchemaPrompt();
  user += "\n### Natural Language Annotations:\nA:\n";
  prompt.push_back({ChatMessage::Role::kUser, std::move(user)});
  return prompt;
}

Prompt BuildGenerationPrompt(const std::vector<GenerationExample>& examples,
                             const std::string& schema_prompt,
                             const std::string& nlq) {
  Prompt prompt;
  prompt.push_back(
      {ChatMessage::Role::kSystem,
       "Please follow the syntax in the examples instead of SQL syntax."});
  std::string user =
      "#### Given Natural Language Questions, Generate DVQs based on "
      "their corresponding Database Schemas.\n\n";
  for (const GenerationExample& ex : examples) {
    user += "### Database Schemas:\n";
    user += ex.schema_prompt;
    user += kChartTypeLine;
    user += "### Natural Language Question:\n# \"" + ex.nlq + "\"\n";
    user += "### Data Visualization Query:\nA: " + ex.dvq + "\n\n";
  }
  user += "### Database Schemas:\n";
  user += schema_prompt;
  user += kChartTypeLine;
  user += "### Natural Language Question:\n# \"" + nlq + "\"\n";
  user += "### Data Visualization Query:\nA:";
  prompt.push_back({ChatMessage::Role::kUser, std::move(user)});
  return prompt;
}

Prompt BuildRetunePrompt(const std::vector<std::string>& reference_dvqs,
                         const std::string& original_dvq) {
  Prompt prompt;
  prompt.push_back(
      {ChatMessage::Role::kSystem,
       "The Reference Data Visualization Queries(DVQs) all comply with "
       "the syntax of DVQ. Please follow the syntax of the referenced DVQ "
       "to modify the Original DVQ."});
  std::string user = "### Reference DVQs:\n";
  for (std::size_t i = 0; i < reference_dvqs.size(); ++i) {
    user += std::to_string(i + 1) + " - " + reference_dvqs[i] + "\n";
  }
  user +=
      "\n#### Given the Reference DVQs, please modify the Original DVQ to "
      "mimic the style of the Reference DVQs.\n"
      "#### NOTE: Do not Modify the column name in Original DVQ. "
      "Especially do not Modify the column names in the ORDER clause!\n"
      "### Original DVQ:\n# " +
      original_dvq + "\nA: Let's think step by step!";
  prompt.push_back({ChatMessage::Role::kUser, std::move(user)});
  return prompt;
}

Prompt BuildDebugPrompt(const std::string& schema_prompt,
                        const std::string& annotations,
                        const std::string& original_dvq) {
  return BuildDebugPrompt(schema_prompt, annotations, original_dvq,
                          /*diagnostics=*/"");
}

Prompt BuildDebugPrompt(const std::string& schema_prompt,
                        const std::string& annotations,
                        const std::string& original_dvq,
                        const std::string& diagnostics) {
  Prompt prompt;
  prompt.push_back(
      {ChatMessage::Role::kSystem,
       "#### NOTE: Don't replace column names in Original DVQ that "
       "already exist in the database schemas, especially column names in "
       "GROUP BY Clause!"});
  std::string user = "### Database Schemas:\n";
  user += schema_prompt;
  user += "\n### Natural Language Annotations:\n";
  user += annotations;
  if (!diagnostics.empty()) {
    user +=
        "\n### Static Analysis Findings (schema-checked, one per line):\n";
    for (const std::string& line : strings::Split(diagnostics, '\n')) {
      if (!line.empty()) user += "# " + line + "\n";
    }
  }
  user +=
      "\n#### Given Database Schemas and their corresponding Natural "
      "Language Annotations, Please replace the column names in the Data "
      "Visualization Query(DVQ, a new Programming Language abstracted "
      "from Vega-Zero) that do not exist in the database.\n"
      "#### NOTE: Don't replace column names in Original DVQ that "
      "already exist in the database schemas, especially column names in "
      "GROUP BY Clause!\n"
      "### Original DVQ:\n# " +
      original_dvq + "\nA: Let's think step by step!";
  prompt.push_back({ChatMessage::Role::kUser, std::move(user)});
  return prompt;
}

Result<schema::Database> ParseSchemaPrompt(const std::string& text) {
  schema::Database db("prompt_db");
  for (const std::string& raw_line : strings::Split(text, '\n')) {
    std::string line = strings::Trim(raw_line);
    if (strings::StartsWith(line, "# Table")) {
      std::size_t comma = line.find(',');
      if (comma == std::string::npos) {
        return Status::ParseError("malformed table line: " + line);
      }
      std::string name = strings::Trim(line.substr(7, comma - 7));
      std::size_t lb = line.find('[', comma);
      std::size_t rb = line.rfind(']');
      if (lb == std::string::npos || rb == std::string::npos || rb <= lb) {
        return Status::ParseError("malformed column list: " + line);
      }
      schema::TableDef table(name, {});
      for (const std::string& piece :
           strings::Split(line.substr(lb + 1, rb - lb - 1), ',')) {
        std::string col = strings::Trim(piece);
        if (col.empty() || col == "*") continue;
        schema::Column column;
        column.name = col;
        column.type = schema::ColumnType::kText;
        table.AddColumn(std::move(column));
      }
      db.AddTable(std::move(table));
    } else if (strings::StartsWith(line, "# Foreign_keys")) {
      std::size_t lb = line.find('[');
      std::size_t rb = line.rfind(']');
      if (lb == std::string::npos || rb == std::string::npos || rb <= lb) {
        continue;
      }
      for (const std::string& piece :
           strings::Split(line.substr(lb + 1, rb - lb - 1), ',')) {
        std::string edge = strings::Trim(piece);
        if (edge.empty()) continue;
        std::size_t eq = edge.find('=');
        if (eq == std::string::npos) continue;
        auto parse_side = [](const std::string& side)
            -> std::pair<std::string, std::string> {
          std::size_t dot = side.find('.');
          if (dot == std::string::npos) return {"", side};
          return {side.substr(0, dot), side.substr(dot + 1)};
        };
        auto [lt, lc] = parse_side(strings::Trim(edge.substr(0, eq)));
        auto [rt, rc] = parse_side(strings::Trim(edge.substr(eq + 1)));
        schema::ForeignKey fk;
        fk.from_table = lt;
        fk.from_column = lc;
        fk.to_table = rt;
        fk.to_column = rc;
        db.AddForeignKey(std::move(fk));
      }
    }
  }
  if (db.tables().empty()) {
    return Status::ParseError("schema prompt contains no tables");
  }
  return db;
}

std::string ExtractDvqText(const std::string& completion) {
  // Case-insensitive: real models emit "visualize bar ..." as readily as
  // "Visualize BAR ..." (the lexical variability the paper studies), and
  // the lexer accepts either. Prefer the last occurrence so chatty prose
  // before the answer ("let me visualize that for you: ...") does not
  // hijack extraction — the DVQ is the final line of every prompt's
  // expected answer format.
  std::size_t pos = strings::ToLower(completion).rfind("visualize");
  if (pos == std::string::npos) return std::string();
  std::size_t end = completion.find('\n', pos);
  if (end == std::string::npos) end = completion.size();
  return completion.substr(pos, end - pos);
}

}  // namespace gred::llm
