#ifndef GREDVIS_LLM_RESILIENT_H_
#define GREDVIS_LLM_RESILIENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "llm/chat_model.h"
#include "util/timing.h"

namespace gred::llm {

/// Knobs of the fault-injecting decorator. All rates are independent
/// probabilities in [0, 1].
struct FaultConfig {
  /// Probability that a call fails with Status::Unavailable before
  /// reaching the inner model (a dropped connection / 503).
  double transient_rate = 0.0;
  /// Probability that a successful completion is cut to its first half
  /// (a response truncated mid-stream).
  double truncate_rate = 0.0;
  /// Probability that chatty assistant prose — which mentions the word
  /// "visualize" — is prepended to a successful completion (exercises
  /// DVQ extraction robustness).
  double garbage_rate = 0.0;
  /// Base seed mixed into every per-call RNG stream.
  std::uint64_t seed = 0x5EEDULL;
};

/// Decorator that deterministically injects faults into a ChatModel.
///
/// Each call draws from an RNG seeded by (config seed, FNV fingerprint of
/// the rendered prompt, per-prompt attempt index) — no wall clock and no
/// process-global state — so a given prompt's Nth attempt produces the
/// same outcome on every run, machine and thread count. Retrying a
/// transiently-failed prompt advances its attempt index, giving the
/// retry an independent draw (a retry can therefore succeed, as with a
/// real flaky backend).
///
/// Thread-safe: the attempt-index map is mutex-guarded and the stats are
/// atomics. Calls for distinct prompts never affect each other's draws,
/// which is what makes parallel evaluation deterministic.
class FaultInjectingChatModel : public ChatModel {
 public:
  /// Wraps `inner` (not owned; must outlive this object).
  FaultInjectingChatModel(const ChatModel* inner, FaultConfig config);

  Result<std::string> Complete(const Prompt& prompt,
                               const ChatOptions& options) const override;

  /// Counters of what was actually injected (for bench reporting).
  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t transient_faults = 0;
    std::uint64_t truncations = 0;
    std::uint64_t garbage_prefixes = 0;
  };
  Stats stats() const;

  const FaultConfig& config() const { return config_; }

 private:
  const ChatModel* inner_;
  FaultConfig config_;
  mutable std::mutex mutex_;  // guards attempts_
  mutable std::map<std::uint64_t, std::uint32_t> attempts_;  // by prompt fp
  mutable std::atomic<std::uint64_t> calls_{0};
  mutable std::atomic<std::uint64_t> transient_faults_{0};
  mutable std::atomic<std::uint64_t> truncations_{0};
  mutable std::atomic<std::uint64_t> garbage_prefixes_{0};
};

/// Knobs of the retrying decorator.
struct RetryConfig {
  /// Total attempts per Complete call (>= 1; 1 means no retry).
  std::size_t max_attempts = 3;
  /// Simulated exponential backoff: attempt k (0-based) waits
  /// `backoff_seconds * backoff_multiplier^k` before retrying. The wait
  /// is accounted, not slept, so runs stay fast and deterministic.
  double backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
};

/// Decorator that retries transient failures of the inner ChatModel.
///
/// Only `Status::IsTransient()` failures are retried; permanent errors
/// and successes pass through on the first attempt. Backoff is simulated
/// (accumulated into `simulated_backoff()` rather than slept) so stage
/// timings can account for it without making benchmarks wall-clock
/// dependent. Thread-safe: stats are atomics, backoff is an
/// AtomicDuration.
class RetryingChatModel : public ChatModel {
 public:
  /// Wraps `inner` (not owned; must outlive this object).
  RetryingChatModel(const ChatModel* inner, RetryConfig config);

  Result<std::string> Complete(const Prompt& prompt,
                               const ChatOptions& options) const override;

  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t retries = 0;    // extra attempts beyond the first
    std::uint64_t exhausted = 0;  // calls that failed every attempt
  };
  Stats stats() const;

  /// Total simulated backoff wait across all retried calls.
  const AtomicDuration& simulated_backoff() const { return backoff_; }

  const RetryConfig& config() const { return config_; }

 private:
  const ChatModel* inner_;
  RetryConfig config_;
  mutable std::atomic<std::uint64_t> calls_{0};
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> exhausted_{0};
  mutable AtomicDuration backoff_;
};

}  // namespace gred::llm

#endif  // GREDVIS_LLM_RESILIENT_H_
