#ifndef GREDVIS_LLM_CHAT_MODEL_H_
#define GREDVIS_LLM_CHAT_MODEL_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace gred::llm {

/// One message of a chat prompt.
struct ChatMessage {
  enum class Role { kSystem, kUser, kAssistant };
  Role role = Role::kUser;
  std::string content;
};

/// A full chat prompt (Appendix C of the paper builds four of these).
using Prompt = std::vector<ChatMessage>;

/// Sampling options mirroring the paper's openai.ChatCompletion.create
/// parameters (Section 5.1): temperature 0 everywhere; the working phase
/// uses frequency/presence penalties of -0.5.
struct ChatOptions {
  double temperature = 0.0;
  double frequency_penalty = 0.0;
  double presence_penalty = 0.0;
};

/// Interface of the chat LLM (GPT-3.5-Turbo in the paper).
class ChatModel {
 public:
  virtual ~ChatModel() = default;

  /// Produces the assistant completion for `prompt`.
  virtual Result<std::string> Complete(const Prompt& prompt,
                                       const ChatOptions& options) const = 0;
};

/// Renders a prompt as plain text (for logging and tests).
std::string RenderPrompt(const Prompt& prompt);

}  // namespace gred::llm

#endif  // GREDVIS_LLM_CHAT_MODEL_H_
