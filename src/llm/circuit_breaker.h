#ifndef GREDVIS_LLM_CIRCUIT_BREAKER_H_
#define GREDVIS_LLM_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>

#include "llm/chat_model.h"

namespace gred::llm {

/// Knobs of the circuit-breaking decorator. Both thresholds are counted
/// in *calls*, never wall clock, keeping the whole resilience stack
/// deterministic and replayable (DESIGN.md §8/§16).
struct BreakerConfig {
  /// Consecutive transient failures that trip the breaker open.
  std::size_t failure_threshold = 5;
  /// Fast-failed calls absorbed while open before the next call is
  /// admitted as a half-open probe. (The deterministic stand-in for a
  /// wall-clock cooldown: "time" is measured in rejected demand.)
  std::size_t open_cooldown = 8;
};

/// Decorator that stops hammering a dead backend: after
/// `failure_threshold` consecutive transient failures of the inner
/// model, the breaker opens and fails calls immediately — without
/// touching the inner model, so a wrapped RetryingChatModel burns no
/// retry budget per request. After `open_cooldown` fast-failed calls
/// the next call is admitted as a half-open probe: a probe success
/// closes the breaker (full reset), a transient probe failure re-opens
/// it for another cooldown. Non-transient results (success or permanent
/// error) never count against the breaker — it tracks backend health,
/// not request validity.
///
/// State machine (deterministic, driven by call counts only):
///
///   closed --(threshold consecutive transient failures)--> open
///   open   --(cooldown fast-fails, next call)-----------> half-open
///   half-open --(probe ok / permanent error)------------> closed
///   half-open --(probe transient failure)---------------> open
///
/// Thread-safe: admission decisions and transitions are mutex-guarded;
/// the inner call runs outside the lock. While a half-open probe is in
/// flight, concurrent calls fast-fail (exactly one probe at a time), so
/// a stuck probe cannot let a thundering herd through.
class CircuitBreakerChatModel : public ChatModel {
 public:
  /// Wraps `inner` (not owned; must outlive this object).
  CircuitBreakerChatModel(const ChatModel* inner, BreakerConfig config);

  Result<std::string> Complete(const Prompt& prompt,
                               const ChatOptions& options) const override;

  enum class State { kClosed, kOpen, kHalfOpen };
  State state() const;

  /// Monotonic counters (surfaced by the serve stats endpoint and the
  /// chaos harness).
  struct Stats {
    std::uint64_t calls = 0;        // every Complete() on this decorator
    std::uint64_t admitted = 0;     // calls that reached the inner model
    std::uint64_t fast_failures = 0;  // rejected while open / probing
    std::uint64_t probes = 0;       // half-open admissions
    std::uint64_t trips = 0;        // closed -> open transitions
    std::uint64_t resets = 0;       // -> closed transitions (recoveries)
  };
  Stats stats() const;

  const BreakerConfig& config() const { return config_; }

 private:
  const ChatModel* inner_;
  BreakerConfig config_;

  mutable std::mutex mu_;
  mutable State state_ = State::kClosed;
  mutable std::size_t consecutive_failures_ = 0;
  mutable std::size_t rejected_since_open_ = 0;
  mutable bool probe_in_flight_ = false;
  mutable Stats stats_;
};

}  // namespace gred::llm

#endif  // GREDVIS_LLM_CIRCUIT_BREAKER_H_
