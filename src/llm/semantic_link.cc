#include "llm/semantic_link.h"

#include <algorithm>
#include <functional>
#include <set>

#include "models/linking.h"
#include "nl/text.h"
#include "util/strings.h"

namespace gred::llm {

namespace {

double WordPairSimilarity(const std::string& a, const std::string& b,
                          const nl::Lexicon& lexicon) {
  double sem = lexicon.WordSimilarity(a, b);
  if (sem > 0.0) return sem;
  double edit = strings::EditSimilarity(a, b);
  // Scaled fallback: surface closeness without semantic confirmation.
  return edit >= 0.7 ? 0.6 * edit : 0.0;
}

}  // namespace

double SemanticNameSimilarity(const std::string& a, const std::string& b,
                              const nl::Lexicon& lexicon) {
  std::vector<std::string> wa = strings::SplitIdentifierWords(a);
  std::vector<std::string> wb = strings::SplitIdentifierWords(b);
  if (wa.empty() || wb.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& w : wa) {
    double best = 0.0;
    for (const std::string& v : wb) {
      best = std::max(best, WordPairSimilarity(w, v, lexicon));
    }
    total += best;
  }
  // Symmetric penalty for unmatched words on the longer side.
  return total / static_cast<double>(std::max(wa.size(), wb.size()));
}

double SemanticMentionScore(const std::vector<std::string>& nlq_tokens,
                            const std::string& column_name,
                            const nl::Lexicon& lexicon) {
  std::vector<std::string> words =
      strings::SplitIdentifierWords(column_name);
  if (words.empty() || nlq_tokens.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& w : words) {
    double best = 0.0;
    for (const std::string& t : nlq_tokens) {
      best = std::max(best, WordPairSimilarity(w, t, lexicon));
    }
    total += best;
  }
  return total / static_cast<double>(words.size());
}

double SoftTokenSimilarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           const nl::Lexicon& lexicon) {
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& w : a) {
    double best = 0.0;
    for (const std::string& v : b) {
      best = std::max(best, WordPairSimilarity(w, v, lexicon));
    }
    total += best;
  }
  return total / static_cast<double>(std::max(a.size(), b.size()));
}

void RelinkSchemaSemantically(dvq::Query* query,
                              const schema::Database& db_schema,
                              const std::vector<std::string>& nlq_tokens,
                              const nl::Lexicon& lexicon,
                              const SemanticLinkOptions& options) {
  // Tables.
  std::function<void(dvq::Query*)> relink_tables = [&](dvq::Query* q) {
    auto fix_table = [&](std::string* table) {
      if (db_schema.FindTable(*table) != nullptr) return;
      std::string best_table;
      double best = 0.0;
      for (const schema::TableDef& t : db_schema.tables()) {
        double score = SemanticNameSimilarity(t.name(), *table, lexicon);
        if (score > best) {
          best = score;
          best_table = t.name();
        }
      }
      if (best >= options.table_threshold) *table = best_table;
    };
    fix_table(&q->from_table);
    for (dvq::JoinClause& j : q->joins) fix_table(&j.table);
    if (q->where.has_value()) {
      for (dvq::Predicate& p : q->where->predicates) {
        if (p.subquery != nullptr) {
          dvq::Query inner = *p.subquery;
          relink_tables(&inner);
          p.subquery = std::make_shared<const dvq::Query>(std::move(inner));
        }
      }
    }
  };
  relink_tables(query);
  models::RepairJoinKeys(query, db_schema);

  // Foreign-key columns threaded through scalar subqueries are resolved
  // structurally, not by mention evidence; protect them when they exist.
  std::set<std::string> protected_cols;
  std::function<void(const dvq::Query&)> collect_protected =
      [&](const dvq::Query& q) {
        if (!q.where.has_value()) return;
        for (const dvq::Predicate& p : q.where->predicates) {
          if (p.subquery == nullptr) continue;
          if (db_schema.HasColumn(p.col.column)) {
            protected_cols.insert(strings::ToLower(p.col.column));
          }
          if (p.subquery->select.size() == 1 &&
              db_schema.HasColumn(p.subquery->select[0].col.column)) {
            protected_cols.insert(
                strings::ToLower(p.subquery->select[0].col.column));
          }
          collect_protected(*p.subquery);
        }
      };
  collect_protected(*query);

  auto annotation_words =
      [&](const std::string& column) -> const std::vector<std::string>* {
    if (options.annotations == nullptr) return nullptr;
    for (const auto& [col, words] : *options.annotations) {
      if (strings::EqualsIgnoreCase(col, column)) return &words;
    }
    return nullptr;
  };

  auto relink_ref = [&](dvq::ColumnRef* ref) {
    if (ref->column == "*") return;
    const bool present = db_schema.HasColumn(ref->column);
    if (present && options.only_missing) return;
    const bool rescue_only = !present && !options.relink_missing;
    if (rescue_only && options.mention_rescue_threshold <= 0.0) return;
    if (present && protected_cols.count(strings::ToLower(ref->column)) > 0) {
      return;
    }
    std::string best_table;
    std::string best_column;
    double best = 0.0;
    for (const schema::TableDef& table : db_schema.tables()) {
      for (const schema::Column& col : table.columns()) {
        double name_sim;
        if (strings::EqualsIgnoreCase(col.name, ref->column)) {
          name_sim = 1.0;
        } else {
          name_sim = SemanticNameSimilarity(col.name, ref->column, lexicon);
          if (const std::vector<std::string>* words =
                  annotation_words(col.name)) {
            // Annotation evidence: align the hallucinated name's words to
            // the column's annotation vocabulary.
            std::string joined = strings::Join(*words, "_");
            name_sim = std::max(
                name_sim,
                SemanticNameSimilarity(joined, ref->column, lexicon));
          }
        }
        double mention =
            SemanticMentionScore(nlq_tokens, col.name, lexicon);
        if (rescue_only && mention < options.mention_rescue_threshold) {
          continue;  // rescue requires question-grounded candidates
        }
        double score = (1.0 - options.mention_weight) * name_sim +
                       options.mention_weight * mention;
        if (score > best) {
          best = score;
          best_table = table.name();
          best_column = col.name;
        }
      }
    }
    if (best < options.column_threshold || best_column.empty()) return;
    if (!strings::EqualsIgnoreCase(best_column, ref->column) ||
        best_column != ref->column) {
      ref->column = best_column;
      if (!ref->table.empty()) ref->table = best_table;
    }
  };
  dvq::TransformNonJoinColumnRefs(query, relink_ref);
}

}  // namespace gred::llm
