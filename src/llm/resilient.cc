#include "llm/resilient.h"

#include <cstdint>
#include <utility>

#include "util/rng.h"
#include "util/strings.h"

namespace gred::llm {

namespace {

/// splitmix64-style avalanche of three words into one RNG seed. The
/// constants are the splitmix64 increments; the point is only that
/// (seed, fingerprint, attempt) triples land far apart.
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t fingerprint,
                      std::uint64_t attempt) {
  std::uint64_t x = seed ^ (fingerprint * 0x9E3779B97F4A7C15ULL) ^
                    ((attempt + 1) * 0xBF58476D1CE4E5B9ULL);
  x ^= x >> 30;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Prose a chatty assistant might emit before the answer. Mentions
/// "visualize" in lowercase on purpose: extraction must not latch onto
/// it (llm::ExtractDvqText prefers the last occurrence).
constexpr char kGarbagePrefix[] =
    "Sure! Let me visualize that for you. Here is the query you asked "
    "for, following the DVQ syntax:\n";

}  // namespace

FaultInjectingChatModel::FaultInjectingChatModel(const ChatModel* inner,
                                                 FaultConfig config)
    : inner_(inner), config_(config) {}

Result<std::string> FaultInjectingChatModel::Complete(
    const Prompt& prompt, const ChatOptions& options) const {
  calls_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t fingerprint = Fnv1a64(RenderPrompt(prompt));
  std::uint32_t attempt;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    attempt = attempts_[fingerprint]++;
  }
  Rng rng(MixSeed(config_.seed, fingerprint, attempt));
  // Draw every fault decision up front so the outcome of attempt N is a
  // pure function of (seed, prompt, N) regardless of which faults fire.
  bool transient = rng.NextBool(config_.transient_rate);
  bool truncate = rng.NextBool(config_.truncate_rate);
  bool garbage = rng.NextBool(config_.garbage_rate);
  if (transient) {
    transient_faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        strings::Format("injected transient fault (prompt %016llx, "
                        "attempt %u)",
                        static_cast<unsigned long long>(fingerprint),
                        attempt));
  }
  Result<std::string> completion = inner_->Complete(prompt, options);
  if (!completion.ok()) return completion;
  std::string text = std::move(completion).value();
  if (truncate) {
    truncations_.fetch_add(1, std::memory_order_relaxed);
    text.resize(text.size() / 2);
  }
  if (garbage) {
    garbage_prefixes_.fetch_add(1, std::memory_order_relaxed);
    text = kGarbagePrefix + text;
  }
  return text;
}

FaultInjectingChatModel::Stats FaultInjectingChatModel::stats() const {
  Stats s;
  s.calls = calls_.load(std::memory_order_relaxed);
  s.transient_faults = transient_faults_.load(std::memory_order_relaxed);
  s.truncations = truncations_.load(std::memory_order_relaxed);
  s.garbage_prefixes = garbage_prefixes_.load(std::memory_order_relaxed);
  return s;
}

RetryingChatModel::RetryingChatModel(const ChatModel* inner,
                                     RetryConfig config)
    : inner_(inner), config_(config) {
  if (config_.max_attempts == 0) config_.max_attempts = 1;
}

Result<std::string> RetryingChatModel::Complete(
    const Prompt& prompt, const ChatOptions& options) const {
  calls_.fetch_add(1, std::memory_order_relaxed);
  double wait = config_.backoff_seconds;
  Result<std::string> last = Status::Internal("retry loop did not run");
  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Simulated backoff: account the wait instead of sleeping so runs
      // stay fast and independent of the wall clock.
      retries_.fetch_add(1, std::memory_order_relaxed);
      backoff_.AddNanos(static_cast<std::int64_t>(wait * 1e9));
      wait *= config_.backoff_multiplier;
    }
    last = inner_->Complete(prompt, options);
    if (last.ok() || !last.status().IsTransient()) return last;
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

RetryingChatModel::Stats RetryingChatModel::stats() const {
  Stats s;
  s.calls = calls_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gred::llm
