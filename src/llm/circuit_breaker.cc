#include "llm/circuit_breaker.h"

namespace gred::llm {

CircuitBreakerChatModel::CircuitBreakerChatModel(const ChatModel* inner,
                                                 BreakerConfig config)
    : inner_(inner), config_(config) {
  if (config_.failure_threshold == 0) config_.failure_threshold = 1;
}

Result<std::string> CircuitBreakerChatModel::Complete(
    const Prompt& prompt, const ChatOptions& options) const {
  bool is_probe = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.calls;
    switch (state_) {
      case State::kClosed:
        break;  // admit
      case State::kOpen:
        if (rejected_since_open_ >= config_.open_cooldown) {
          // Cooldown served: this call becomes the half-open probe.
          state_ = State::kHalfOpen;
          probe_in_flight_ = true;
          is_probe = true;
          ++stats_.probes;
          break;
        }
        ++rejected_since_open_;
        ++stats_.fast_failures;
        return Status::Unavailable("circuit breaker open");
      case State::kHalfOpen:
        if (!probe_in_flight_) {
          // The previous probe resolved while we held no lock decisions;
          // admit this call as the next probe.
          probe_in_flight_ = true;
          is_probe = true;
          ++stats_.probes;
          break;
        }
        // One probe at a time: everyone else sheds until it resolves.
        ++stats_.fast_failures;
        return Status::Unavailable("circuit breaker half-open (probe busy)");
    }
    ++stats_.admitted;
  }

  Result<std::string> result = inner_->Complete(prompt, options);

  std::lock_guard<std::mutex> lock(mu_);
  const bool transient_failure =
      !result.ok() && result.status().IsTransient();
  if (is_probe) {
    probe_in_flight_ = false;
    if (transient_failure) {
      // Probe failed: back to open for another cooldown.
      state_ = State::kOpen;
      rejected_since_open_ = 0;
      consecutive_failures_ = config_.failure_threshold;
    } else {
      // Probe succeeded (or failed permanently, which says the backend
      // is reachable): full reset.
      state_ = State::kClosed;
      consecutive_failures_ = 0;
      rejected_since_open_ = 0;
      ++stats_.resets;
    }
    return result;
  }
  if (state_ == State::kClosed) {
    if (transient_failure) {
      if (++consecutive_failures_ >= config_.failure_threshold) {
        state_ = State::kOpen;
        rejected_since_open_ = 0;
        ++stats_.trips;
      }
    } else {
      consecutive_failures_ = 0;
    }
  }
  // A non-probe call resolving while open/half-open (it was admitted
  // before the trip) carries no signal we act on: the probe protocol
  // owns recovery.
  return result;
}

CircuitBreakerChatModel::State CircuitBreakerChatModel::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreakerChatModel::Stats CircuitBreakerChatModel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gred::llm
