#include "llm/recording.h"

namespace gred::llm {

Result<std::string> RecordingChatModel::Complete(
    const Prompt& prompt, const ChatOptions& options) const {
  Result<std::string> result = inner_->Complete(prompt, options);
  Exchange exchange;
  exchange.prompt = prompt;
  exchange.options = options;
  if (result.ok()) {
    exchange.status = Status::OK();
    exchange.completion = result.value();
  } else {
    exchange.status = result.status();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  exchanges_.push_back(std::move(exchange));
  return result;
}

std::string RecordingChatModel::Transcript() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (std::size_t i = 0; i < exchanges_.size(); ++i) {
    const Exchange& exchange = exchanges_[i];
    out += "================ exchange " + std::to_string(i + 1) + " of " +
           std::to_string(exchanges_.size()) + " ================\n";
    out += RenderPrompt(exchange.prompt);
    out += "---------------- completion ----------------\n";
    out += exchange.status.ok() ? exchange.completion
                                : "(error) " + exchange.status.ToString();
    out += "\n\n";
  }
  return out;
}

}  // namespace gred::llm
