#ifndef GREDVIS_LLM_RECORDING_H_
#define GREDVIS_LLM_RECORDING_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "llm/chat_model.h"

namespace gred::llm {

/// Decorator that records every prompt/completion exchange passing
/// through a ChatModel. Used to inspect exactly what GRED sends to the
/// LLM (the Appendix C prompts) and what comes back, to count calls per
/// pipeline stage, and to dump transcripts for debugging.
class RecordingChatModel : public ChatModel {
 public:
  /// One recorded exchange.
  struct Exchange {
    Prompt prompt;
    ChatOptions options;
    Status status;        // completion status
    std::string completion;  // empty when status is not OK
  };

  /// Wraps `inner` (not owned; must outlive this object).
  explicit RecordingChatModel(const ChatModel* inner) : inner_(inner) {}

  /// Thread-safe: concurrent completions append under a mutex (their
  /// relative order is whatever the scheduler produced).
  Result<std::string> Complete(const Prompt& prompt,
                               const ChatOptions& options) const override;

  /// Direct view of the recording. Only safe while no concurrent
  /// Complete calls are in flight (inspection happens after a run);
  /// use call_count()/Transcript() for synchronized access.
  const std::vector<Exchange>& exchanges() const { return exchanges_; }

  std::size_t call_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return exchanges_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    exchanges_.clear();
  }

  /// Renders all recorded exchanges as readable text (prompt roles,
  /// contents and completions), for logs or files.
  std::string Transcript() const;

 private:
  const ChatModel* inner_;
  mutable std::mutex mutex_;  // guards exchanges_
  mutable std::vector<Exchange> exchanges_;
};

}  // namespace gred::llm

#endif  // GREDVIS_LLM_RECORDING_H_
