#ifndef GREDVIS_LLM_RECORDING_H_
#define GREDVIS_LLM_RECORDING_H_

#include <cstddef>
#include <string>
#include <vector>

#include "llm/chat_model.h"

namespace gred::llm {

/// Decorator that records every prompt/completion exchange passing
/// through a ChatModel. Used to inspect exactly what GRED sends to the
/// LLM (the Appendix C prompts) and what comes back, to count calls per
/// pipeline stage, and to dump transcripts for debugging.
class RecordingChatModel : public ChatModel {
 public:
  /// One recorded exchange.
  struct Exchange {
    Prompt prompt;
    ChatOptions options;
    Status status;        // completion status
    std::string completion;  // empty when status is not OK
  };

  /// Wraps `inner` (not owned; must outlive this object).
  explicit RecordingChatModel(const ChatModel* inner) : inner_(inner) {}

  Result<std::string> Complete(const Prompt& prompt,
                               const ChatOptions& options) const override;

  const std::vector<Exchange>& exchanges() const { return exchanges_; }
  std::size_t call_count() const { return exchanges_.size(); }
  void Clear() { exchanges_.clear(); }

  /// Renders all recorded exchanges as readable text (prompt roles,
  /// contents and completions), for logs or files.
  std::string Transcript() const;

 private:
  const ChatModel* inner_;
  mutable std::vector<Exchange> exchanges_;
};

}  // namespace gred::llm

#endif  // GREDVIS_LLM_RECORDING_H_
