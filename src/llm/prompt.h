#ifndef GREDVIS_LLM_PROMPT_H_
#define GREDVIS_LLM_PROMPT_H_

#include <string>
#include <vector>

#include "llm/chat_model.h"
#include "schema/schema.h"

namespace gred::llm {

/// One in-context example of the NLQ-Retrieval Generator prompt.
struct GenerationExample {
  std::string schema_prompt;  // "# Table ..." lines
  std::string nlq;
  std::string dvq;
};

/// Builds the C.1 Database Annotation Generator prompt: one worked
/// example (departments/jobs) followed by the target schema.
Prompt BuildAnnotationPrompt(const schema::Database& db);

/// Builds the C.2 NLQ-Retrieval Generator prompt. `examples` must be in
/// the order they should appear; GRED passes them in ascending
/// similarity (most similar example adjacent to the question).
Prompt BuildGenerationPrompt(const std::vector<GenerationExample>& examples,
                             const std::string& schema_prompt,
                             const std::string& nlq);

/// Builds the C.3 DVQ-Retrieval Retuner prompt from reference DVQs.
Prompt BuildRetunePrompt(const std::vector<std::string>& reference_dvqs,
                         const std::string& original_dvq);

/// Builds the C.4 Annotation-based Debugger prompt.
Prompt BuildDebugPrompt(const std::string& schema_prompt,
                        const std::string& annotations,
                        const std::string& original_dvq);

/// Variant carrying the static analyzer's findings (analysis::DvqAnalyzer
/// rendered one per line). An empty `diagnostics` is the plain C.4
/// prompt, byte-identical to the overload above; otherwise the findings
/// are appended as a "### Static Analysis Findings" section so the
/// debugger repairs against structured evidence instead of rediscovering
/// the mismatches from the schema alone.
Prompt BuildDebugPrompt(const std::string& schema_prompt,
                        const std::string& annotations,
                        const std::string& original_dvq,
                        const std::string& diagnostics);

/// Extracts the DVQ string from an LLM completion (the line starting at
/// the first "Visualize"); empty when absent.
std::string ExtractDvqText(const std::string& completion);

/// Parses a "# Table name , columns = [ * , a , b ]" schema-prompt block
/// back into a Database (columns default to Text type; foreign keys are
/// recovered from the "# Foreign_keys = [...]" line).
Result<schema::Database> ParseSchemaPrompt(const std::string& text);

}  // namespace gred::llm

#endif  // GREDVIS_LLM_PROMPT_H_
