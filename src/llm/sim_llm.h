#ifndef GREDVIS_LLM_SIM_LLM_H_
#define GREDVIS_LLM_SIM_LLM_H_

#include <string>
#include <vector>

#include "llm/chat_model.h"
#include "llm/prompt.h"
#include "nl/lexicon.h"

namespace gred::llm {

/// Deterministic stand-in for GPT-3.5-Turbo.
///
/// The model receives exactly the prompts GRED builds (Appendix C) and
/// nothing else — it parses the prompt text, recognizes which of the four
/// tasks is being asked, and executes an explicit algorithm per task:
///
///  * Database annotation (C.1): renders per-table/column descriptions,
///    expanding identifier words through the lexicon (the stand-in for an
///    LLM's world knowledge).
///  * DVQ generation (C.2): picks the most relevant in-context example by
///    soft (concept-aware) token similarity with a mild recency bias
///    toward examples near the question — modelling the observation in
///    Section 4.2 that similar examples close to the question reduce
///    hallucination — then adapts its DVQ: intent keywords (general
///    register), literal values copied from the question, and semantic
///    schema linking against the prompt's schema. Emits GPT-ish style:
///    COUNT(*) targets and aliased joins, which the Retuner later
///    normalizes to corpus style.
///  * Style retuning (C.3): infers majority style from the reference
///    DVQs (COUNT target form, subquery-vs-join) and rewrites the
///    original accordingly, never touching column names (the prompt's
///    NOTE).
///  * Schema debugging (C.4): parses the schema and its annotations and
///    replaces only out-of-schema names, linking hallucinated columns to
///    real ones through lexicon + annotation evidence (no NLQ available
///    in this prompt, as in the paper).
///
/// Temperature-0 behaviour: same prompt, same completion, always.
class SimulatedChatModel : public ChatModel {
 public:
  explicit SimulatedChatModel(const nl::Lexicon* lexicon);
  SimulatedChatModel();

  Result<std::string> Complete(const Prompt& prompt,
                               const ChatOptions& options) const override;

 private:
  Result<std::string> CompleteAnnotation(const std::string& user) const;
  Result<std::string> CompleteGeneration(const std::string& user) const;
  Result<std::string> CompleteRetune(const std::string& user) const;
  Result<std::string> CompleteDebug(const std::string& user) const;

  const nl::Lexicon* lexicon_;  // not owned
};

}  // namespace gred::llm

#endif  // GREDVIS_LLM_SIM_LLM_H_
