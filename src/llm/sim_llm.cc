#include "llm/sim_llm.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>

#include "dataset/nlq_render.h"
#include "dvq/normalize.h"
#include "dvq/parser.h"
#include "llm/semantic_link.h"
#include "models/keywords.h"
#include "models/linking.h"
#include "models/revision.h"
#include "nl/text.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gred::llm {

namespace {

using models::DetectorProfile;

/// Deterministic pseudo-randomness keyed on the input text: stands in
/// for the prompt-sensitive style instability of a real LLM (the same
/// model answers stylistically differently for different questions, but
/// identically for identical prompts at temperature 0).
bool StyleCoin(const std::string& key, std::uint64_t salt,
               std::uint64_t percent) {
  return (Fnv1a64(key) ^ salt) % 100 < percent;
}

std::string Section(const std::string& text, const std::string& begin,
                    const std::string& end) {
  std::size_t b = text.find(begin);
  if (b == std::string::npos) return std::string();
  b += begin.size();
  std::size_t e = end.empty() ? std::string::npos : text.find(end, b);
  if (e == std::string::npos) return text.substr(b);
  return text.substr(b, e - b);
}

struct ParsedExample {
  std::string schema_text;
  std::string nlq;
  std::string dvq_text;
};

std::vector<ParsedExample> ParseGenerationBlocks(const std::string& user) {
  std::vector<ParsedExample> out;
  const std::string kMarker = "### Database Schemas:";
  std::size_t pos = user.find(kMarker);
  while (pos != std::string::npos) {
    std::size_t next = user.find(kMarker, pos + kMarker.size());
    std::string chunk =
        user.substr(pos, next == std::string::npos ? std::string::npos
                                                   : next - pos);
    ParsedExample ex;
    ex.schema_text = Section(chunk, kMarker, "### Chart Type");
    std::size_t q_begin = chunk.find("# \"");
    if (q_begin != std::string::npos) {
      std::size_t q_end = chunk.find('"', q_begin + 3);
      if (q_end != std::string::npos) {
        ex.nlq = chunk.substr(q_begin + 3, q_end - q_begin - 3);
      }
    }
    std::size_t a = chunk.find("A: ");
    if (a != std::string::npos) {
      std::size_t line_end = chunk.find('\n', a);
      ex.dvq_text = strings::Trim(
          chunk.substr(a + 3, line_end == std::string::npos
                                  ? std::string::npos
                                  : line_end - a - 3));
    }
    out.push_back(std::move(ex));
    pos = next;
  }
  return out;
}

/// Filter-evidence phrases understood by the general register.
bool HasFilterEvidence(const std::string& lower) {
  static const char* kMarkers[] = {
      "whose",     "where",        "considering only",
      "keep just", "filtered so",  "limited to",  "only for",
  };
  for (const char* m : kMarkers) {
    if (lower.find(m) != std::string::npos) return true;
  }
  return false;
}

/// Finds the first operator phrase of either register in the question.
struct OpHit {
  dvq::CompareOp op = dvq::CompareOp::kEq;
  std::size_t pos = std::string::npos;
  std::size_t len = 0;
};
std::optional<OpHit> FindOpPhrase(const std::string& lower) {
  static const dvq::CompareOp kOps[] = {
      dvq::CompareOp::kGe,   dvq::CompareOp::kLe, dvq::CompareOp::kGt,
      dvq::CompareOp::kLt,   dvq::CompareOp::kNe, dvq::CompareOp::kLike,
      dvq::CompareOp::kEq,
  };
  OpHit best;
  std::size_t best_raw = std::string::npos;
  for (dvq::CompareOp op : kOps) {
    for (const auto* table :
         {&dataset::ExplicitOpPhrases(op), &dataset::ParaphrasedOpPhrases(op)}) {
      for (const std::string& phrase : *table) {
        std::size_t pos = lower.find(" " + phrase + " ");
        if (pos == std::string::npos) continue;
        // Strictly earlier wins; ties keep the first (more specific) op.
        if (best_raw == std::string::npos || pos < best_raw) {
          best_raw = pos;
          best.op = op;
          best.pos = pos + 1;
          best.len = phrase.size();
        }
      }
    }
  }
  if (best_raw == std::string::npos) return std::nullopt;
  return best;
}

}  // namespace

SimulatedChatModel::SimulatedChatModel(const nl::Lexicon* lexicon)
    : lexicon_(lexicon) {}

SimulatedChatModel::SimulatedChatModel()
    : SimulatedChatModel(&nl::Lexicon::Default()) {}

Result<std::string> SimulatedChatModel::Complete(
    const Prompt& prompt, const ChatOptions& options) const {
  (void)options;  // temperature-0 behaviour regardless
  std::string user;
  for (const ChatMessage& m : prompt) {
    if (m.role == ChatMessage::Role::kUser) user += m.content + "\n";
  }
  if (user.find("Generate DVQs based on") != std::string::npos) {
    return CompleteGeneration(user);
  }
  if (user.find("mimic the style of the Reference DVQs") !=
      std::string::npos) {
    return CompleteRetune(user);
  }
  if (user.find("replace the column names") != std::string::npos) {
    return CompleteDebug(user);
  }
  if (user.find("natural language annotations") != std::string::npos) {
    return CompleteAnnotation(user);
  }
  return Status::InvalidArgument("unrecognized prompt task");
}

Result<std::string> SimulatedChatModel::CompleteAnnotation(
    const std::string& user) const {
  std::string schema_text =
      Section(user, "### Database Schemas:", "### Natural Language");
  GRED_ASSIGN_OR_RETURN(schema::Database db, ParseSchemaPrompt(schema_text));
  std::string out = "A:\n";
  for (const schema::TableDef& table : db.tables()) {
    out += "Table " + table.name() + ":\n";
    out += "- Stores data related to " +
           strings::Join(strings::SplitIdentifierWords(table.name()), " ") +
           ".\n- Columns:\n";
    for (const schema::Column& col : table.columns()) {
      std::vector<std::string> words =
          strings::SplitIdentifierWords(col.name);
      std::string description;
      for (const std::string& word : words) {
        if (!description.empty()) description += " ";
        description += word;
        // World knowledge: gloss each word with its canonical concept.
        std::string canonical;
        int idx = lexicon_->ConceptIndexOf(word);
        if (idx >= 0) {
          canonical = lexicon_->concepts()[static_cast<std::size_t>(idx)]
                          .forms[0];
        }
        if (!canonical.empty() &&
            !strings::EqualsIgnoreCase(canonical, word)) {
          description += " (" + canonical + ")";
        }
      }
      out += "- " + col.name + ": the " + description + " recorded in " +
             table.name() + ".\n";
    }
  }
  if (!db.foreign_keys().empty()) {
    out += "Foreign Keys:\n";
    for (const schema::ForeignKey& fk : db.foreign_keys()) {
      out += "- " + fk.from_table + "." + fk.from_column + " references " +
             fk.to_table + "." + fk.to_column + ".\n";
    }
  }
  return out;
}

Result<std::string> SimulatedChatModel::CompleteGeneration(
    const std::string& user) const {
  std::vector<ParsedExample> blocks = ParseGenerationBlocks(user);
  if (blocks.size() < 2) {
    return Status::InvalidArgument("generation prompt has no examples");
  }
  ParsedExample question = blocks.back();
  blocks.pop_back();
  GRED_ASSIGN_OR_RETURN(schema::Database db,
                        ParseSchemaPrompt(question.schema_text));

  // Pick the most relevant example: concept-aware similarity plus a mild
  // recency bias (examples adjacent to the question weigh more).
  std::vector<std::string> q_tokens = nl::ContentTokens(question.nlq);
  std::vector<std::size_t> order(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) order[i] = i;
  std::vector<double> scores(blocks.size(), 0.0);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    scores[i] =
        SoftTokenSimilarity(q_tokens, nl::ContentTokens(blocks[i].nlq),
                            *lexicon_) +
        0.015 * static_cast<double>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return scores[a] > scores[b];
  });

  dvq::DVQ base;
  bool parsed = false;
  for (std::size_t i : order) {
    Result<dvq::DVQ> attempt = dvq::Parse(blocks[i].dvq_text);
    if (attempt.ok()) {
      base = std::move(attempt).value();
      parsed = true;
      break;
    }
  }
  if (!parsed) {
    return Status::InvalidArgument("no parseable example DVQ in prompt");
  }

  const std::string lower = strings::ToLower(question.nlq);
  constexpr DetectorProfile kProfile = DetectorProfile::kGeneral;

  // Chart type.
  if (std::optional<dvq::ChartType> chart =
          models::DetectChart(question.nlq, kProfile)) {
    base.chart = *chart;
  }

  // Select-arity normalization: only grouped charts keep a series column.
  const bool grouped_chart = base.chart == dvq::ChartType::kStackedBar ||
                             base.chart == dvq::ChartType::kGroupingLine ||
                             base.chart == dvq::ChartType::kGroupingScatter;
  if (!grouped_chart && base.query.select.size() > 2) {
    base.query.select.resize(2);
  }
  if (grouped_chart && base.query.select.size() == 2) {
    // Series recovery: the last grouping/splitting phrase names the
    // series column (both registers).
    std::size_t pos = lower.rfind("group by ");
    std::size_t len = 9;
    for (const char* marker : {"split by ", "broken down by "}) {
      std::size_t p = lower.rfind(marker);
      if (p != std::string::npos &&
          (pos == std::string::npos || p > pos)) {
        pos = p;
        len = std::string(marker).size();
      }
    }
    if (pos != std::string::npos) {
      std::vector<std::string> after =
          nl::ContentTokens(lower.substr(pos + len));
      if (after.size() > 3) after.resize(3);
      const nl::Lexicon* lexicon = lexicon_;
      std::string col = models::LinkTargetAfterPhrase(
          after, db,
          [lexicon](const std::string& token, const std::string& word) {
            return lexicon->WordSimilarity(token, word) >= 0.8;
          });
      if (!col.empty() &&
          !strings::EqualsIgnoreCase(col, base.query.select[0].col.column)) {
        dvq::SelectExpr series;
        series.col.column = col;
        base.query.select.push_back(series);
      }
    }
  }

  // Aggregation intent: set the function the question asks for, locate
  // its target column from the words after the aggregation phrase, and
  // strip aggregates with no evidence at all.
  std::optional<models::AggHit> agg_hit =
      models::FindAggPhrase(question.nlq, kProfile);
  bool base_has_agg = base.query.select.size() >= 2 &&
                      base.query.select[1].agg != dvq::AggFunc::kNone;
  if (!agg_hit.has_value()) {
    if (base_has_agg) {
      base.query.select[1].agg = dvq::AggFunc::kNone;
      base.query.select[1].distinct = false;
      if (base.query.select[1].col.column == "*") {
        base.query.select[1].col = base.query.select[0].col;
      }
      base.query.group_by.clear();
    }
  } else if (base.query.select.size() >= 2) {
    const dvq::AggFunc func = agg_hit->func;
    base.query.select[1].agg = func;
    if (func == dvq::AggFunc::kCount) {
      // Corpus convention: the count of the x column.
      base.query.select[1].col = base.query.select[0].col;
    } else {
      // The aggregation target follows the phrase ("the mean wage" ->
      // salary). Proximity wins; words match through the lexicon.
      std::vector<std::string> after =
          nl::ContentTokens(lower.substr(agg_hit->end_pos));
      if (after.size() > 4) after.resize(4);
      const nl::Lexicon* lexicon = lexicon_;
      std::string best_col = models::LinkTargetAfterPhrase(
          after, db,
          [lexicon](const std::string& token, const std::string& word) {
            return lexicon->WordSimilarity(token, word) >= 0.8;
          });
      if (!best_col.empty()) {
        base.query.select[1].col.table.clear();
        base.query.select[1].col.column = best_col;
      }
    }
    // GPT-ish style: a slice of count queries come out as COUNT(*).
    if (func == dvq::AggFunc::kCount && StyleCoin(question.nlq, 0x5717, 30)) {
      base.query.select[1].col.table.clear();
      base.query.select[1].col.column = "*";
      base.query.select[1].distinct = false;
    }
  }

  // Sorting.
  if (std::optional<models::OrderIntent> intent =
          models::DetectOrder(question.nlq, kProfile)) {
    dvq::OrderByClause clause;
    if (base.query.order_by.has_value()) clause = *base.query.order_by;
    if (intent->axis == 0) {
      clause.expr = base.query.select[0];
    } else if (intent->axis == 1 && base.query.select.size() >= 2) {
      clause.expr = base.query.select[1];
    } else if (!base.query.order_by.has_value()) {
      clause.expr = base.query.select.size() >= 2 ? base.query.select[1]
                                                  : base.query.select[0];
    }
    clause.descending = intent->descending;
    base.query.order_by = clause;
  } else {
    base.query.order_by.reset();  // no sorting evidence -> prune
  }

  // Limit.
  if (std::optional<std::int64_t> limit = models::DetectLimit(question.nlq)) {
    base.query.limit = *limit;
  } else {
    base.query.limit.reset();
  }

  // Binning.
  if (std::optional<dvq::BinUnit> unit =
          models::DetectBinUnit(question.nlq, kProfile)) {
    if (base.query.bin.has_value()) {
      base.query.bin->unit = *unit;
    } else {
      dvq::BinClause bin;
      bin.col = base.query.select[0].col;
      bin.unit = *unit;
      base.query.bin = bin;
    }
  } else if (base.query.bin.has_value()) {
    base.query.bin.reset();
  }

  // Grouping: corpus convention induced from the in-context examples —
  // aggregated queries group by x (series first for grouped charts)
  // unless a BIN clause provides the implicit grouping.
  const bool has_agg_now = base.query.select.size() >= 2 &&
                           base.query.select[1].agg != dvq::AggFunc::kNone;
  base.query.group_by.clear();
  if (has_agg_now && !base.query.bin.has_value()) {
    if (grouped_chart && base.query.select.size() >= 3) {
      base.query.group_by.push_back(base.query.select[2].col);
    }
    base.query.group_by.push_back(base.query.select[0].col);
  }

  // Filtering: prune unsupported filters; rebuild evidenced ones from
  // the question itself (what an LLM reading the question does), falling
  // back to the example's filter when the question is less explicit.
  const bool filter_evidence = HasFilterEvidence(lower);
  if (!filter_evidence) {
    base.query.where.reset();
  } else {
    bool base_has_subquery = false;
    if (base.query.where.has_value()) {
      for (const dvq::Predicate& p : base.query.where->predicates) {
        if (p.subquery != nullptr) base_has_subquery = true;
      }
    }
    std::optional<dvq::Predicate> fabricated;
    if (std::optional<OpHit> hit = FindOpPhrase(lower)) {
      // Column: semantic link of the tokens just before the op phrase.
      std::vector<std::string> before =
          nl::ContentTokens(lower.substr(0, hit->pos));
      if (before.size() > 3) {
        before.erase(before.begin(), before.end() - 3);
      }
      std::string best_col;
      std::string best_table;
      double best_score = 0.0;
      for (const schema::TableDef& t : db.tables()) {
        for (const schema::Column& c : t.columns()) {
          double s = SemanticMentionScore(before, c.name, *lexicon_);
          if (s > best_score) {
            best_score = s;
            best_col = c.name;
            best_table = t.name();
          }
        }
      }
      std::optional<dvq::Literal> literal =
          models::LiteralAfterPhrase(question.nlq, hit->pos + hit->len);
      if (!best_col.empty() && best_score >= 0.5 && literal.has_value()) {
        dvq::Predicate pred;
        pred.col.column = best_col;
        pred.op = hit->op;
        if (hit->op == dvq::CompareOp::kLike &&
            literal->kind == dvq::Literal::Kind::kString) {
          literal->string_value = "%" + literal->string_value + "%";
        }
        pred.literal = std::move(*literal);
        // When the filtered column lives outside the query's tables but a
        // foreign key reaches it, phrase the filter as a scalar subquery
        // (the corpus' extra-hard idiom).
        std::vector<std::string> query_tables =
            dvq::CollectTableNames(base.query);
        bool in_query_tables = false;
        for (const std::string& t : query_tables) {
          const schema::TableDef* def = db.FindTable(t);
          if (def != nullptr && def->FindColumn(best_col) != nullptr) {
            in_query_tables = true;
          }
        }
        if (!in_query_tables) {
          for (const schema::ForeignKey& fk : db.foreign_keys()) {
            if (!strings::EqualsIgnoreCase(fk.from_table,
                                           base.query.from_table) ||
                !strings::EqualsIgnoreCase(fk.to_table, best_table)) {
              continue;
            }
            dvq::Query sub;
            dvq::SelectExpr key;
            key.col.column = fk.to_column;
            sub.select.push_back(key);
            sub.from_table = fk.to_table;
            dvq::Condition sub_cond;
            sub_cond.predicates.push_back(pred);
            sub.where = std::move(sub_cond);
            dvq::Predicate outer;
            outer.col.column = fk.from_column;
            outer.op = dvq::CompareOp::kEq;
            outer.subquery =
                std::make_shared<const dvq::Query>(std::move(sub));
            pred = std::move(outer);
            break;
          }
        }
        fabricated = std::move(pred);
      }
    }
    if (fabricated.has_value() &&
        (!base.query.where.has_value() || !base_has_subquery ||
         fabricated->subquery != nullptr)) {
      dvq::Condition cond;
      cond.predicates.push_back(std::move(*fabricated));
      base.query.where = std::move(cond);
    }
  }

  // FROM revision: when the question names (possibly via synonyms) a
  // different table of the target database and never the example's,
  // follow the question. Single-table queries only.
  std::vector<std::string> nlq_tokens = nl::Tokenize(question.nlq);
  if (base.query.joins.empty()) {
    double current = SemanticMentionScore(nlq_tokens, base.query.from_table,
                                          *lexicon_);
    if (current < 0.9) {
      std::string best_table;
      double best = 0.0;
      for (const schema::TableDef& t : db.tables()) {
        double s = SemanticMentionScore(nlq_tokens, t.name(), *lexicon_);
        if (s > best) {
          best = s;
          best_table = t.name();
        }
      }
      if (best >= 0.9) base.query.from_table = best_table;
    }
  }

  // Literal values ride along from the question surface.
  models::AdaptLiterals(&base.query,
                        models::ExtractSurfaceValues(question.nlq));

  // Semantic schema linking against the prompt's schema.
  SemanticLinkOptions link;
  link.only_missing = false;
  link.relink_missing = false;  // hallucinated names are the Debugger's job
  link.mention_rescue_threshold = 0.0;  // name repair is the Debugger's job  // ...unless the question names one
  link.column_threshold = 0.5;
  link.mention_weight = 0.55;
  RelinkSchemaSemantically(&base.query, db, nlq_tokens,
                           *lexicon_, link);

  // Axis grounding, for examples copied from a different database (their
  // FROM table is not in this schema): a select column that did not
  // resolve is read off the question positionally — the earliest token
  // window matching a schema column names the axis ("relating age with
  // salary" -> age, salary). Same-database examples skip this; their
  // residual name drift is the Debugger's job.
  const bool foreign_example =
      db.FindTable(base.query.from_table) == nullptr;
  if (foreign_example) {
    std::vector<std::string> content = nl::ContentTokens(lower);
    const nl::Lexicon* lexicon = lexicon_;
    auto window_matcher = [lexicon](const std::string& token,
                                    const std::string& word) {
      return lexicon->WordSimilarity(token, word) >= 0.8;
    };
    std::vector<std::string> ordered_matches;
    for (std::size_t start = 0; start < content.size(); ++start) {
      std::vector<std::string> suffix(content.begin() +
                                          static_cast<long>(start),
                                      content.end());
      if (suffix.size() > 3) suffix.resize(3);
      std::string hit = models::LinkTargetAfterPhrase(suffix, db,
                                                      window_matcher);
      if (!hit.empty() &&
          std::find(ordered_matches.begin(), ordered_matches.end(), hit) ==
              ordered_matches.end()) {
        ordered_matches.push_back(hit);
      }
    }
    std::size_t cursor = 0;
    for (dvq::SelectExpr& e : base.query.select) {
      if (e.agg != dvq::AggFunc::kNone || e.col.column == "*" ||
          db.HasColumn(e.col.column)) {
        continue;
      }
      // Skip matches already used by resolved select columns.
      while (cursor < ordered_matches.size()) {
        bool taken = false;
        for (const dvq::SelectExpr& other : base.query.select) {
          if (&other != &e &&
              strings::EqualsIgnoreCase(other.col.column,
                                        ordered_matches[cursor])) {
            taken = true;
          }
        }
        if (!taken) break;
        ++cursor;
      }
      if (cursor >= ordered_matches.size()) break;
      e.col.table.clear();
      e.col.column = ordered_matches[cursor++];
    }
  }

  // FROM fallback: an unknown table whose columns all resolve means the
  // example's table name was copied from another database; pick the
  // schema table covering the most of the query's columns. Joins to
  // equally-unknown tables are dropped first.
  if (db.FindTable(base.query.from_table) == nullptr &&
      !base.query.joins.empty()) {
    bool all_unknown = true;
    for (const dvq::JoinClause& j : base.query.joins) {
      if (db.FindTable(j.table) != nullptr) all_unknown = false;
    }
    if (all_unknown) base.query.joins.clear();
  }
  if (db.FindTable(base.query.from_table) == nullptr &&
      base.query.joins.empty()) {
    std::map<std::string, int> coverage;
    for (const dvq::ColumnRef& ref :
         dvq::CollectColumnRefs(base.query)) {
      if (ref.column == "*") continue;
      for (const schema::TableDef& t : db.tables()) {
        if (t.FindColumn(ref.column) != nullptr) ++coverage[t.name()];
      }
    }
    std::string best_table;
    int best = 0;
    for (const auto& [table, count] : coverage) {
      if (count > best) {
        best = count;
        best_table = table;
      }
    }
    if (!best_table.empty()) base.query.from_table = best_table;
  }
  models::SynthesizeJoins(&base.query, db);

  // GPT-ish style: aliased joins on a slice of join queries.
  if (!base.query.joins.empty() && StyleCoin(question.nlq, 0x4a11, 50)) {
    base.query.from_alias = "T1";
    std::map<std::string, std::string> table_alias;
    table_alias[strings::ToLower(base.query.from_table)] = "T1";
    for (std::size_t i = 0; i < base.query.joins.size(); ++i) {
      std::string alias = "T" + std::to_string(i + 2);
      base.query.joins[i].alias = alias;
      table_alias[strings::ToLower(base.query.joins[i].table)] = alias;
    }
    dvq::TransformColumnRefs(&base.query, [&](dvq::ColumnRef* ref) {
      if (ref->table.empty()) return;
      auto it = table_alias.find(strings::ToLower(ref->table));
      if (it != table_alias.end()) ref->table = it->second;
    });
  }

  return "A: " + base.ToString();
}

Result<std::string> SimulatedChatModel::CompleteRetune(
    const std::string& user) const {
  // Parse reference DVQs ("N - Visualize ...").
  std::vector<dvq::DVQ> refs;
  std::string refs_text =
      Section(user, "### Reference DVQs:", "#### Given the Reference");
  for (const std::string& line : strings::Split(refs_text, '\n')) {
    std::size_t dash = line.find(" - ");
    if (dash == std::string::npos) continue;
    Result<dvq::DVQ> parsed = dvq::Parse(strings::Trim(line.substr(dash + 3)));
    if (parsed.ok()) refs.push_back(std::move(parsed).value());
  }
  std::string original_text =
      strings::Trim(Section(user, "### Original DVQ:\n# ", "\nA:"));
  Result<dvq::DVQ> original = dvq::Parse(original_text);
  if (!original.ok() || refs.empty()) {
    // An LLM would echo something sensible; echo the original.
    return "### Modified DVQ:\n# " + original_text;
  }
  dvq::DVQ out = std::move(original).value();

  // --- COUNT target style ------------------------------------------------
  int star = 0;
  int named = 0;
  for (const dvq::DVQ& ref : refs) {
    for (const dvq::SelectExpr& e : ref.query.select) {
      if (e.agg != dvq::AggFunc::kCount) continue;
      if (e.col.column == "*") {
        ++star;
      } else {
        ++named;
      }
    }
  }
  auto fix_count = [&](dvq::SelectExpr* e) {
    if (e->agg != dvq::AggFunc::kCount) return;
    if (named >= star && e->col.column == "*" && !out.query.select.empty()) {
      e->col = out.query.select[0].col;
    } else if (star > named && e->col.column != "*") {
      e->col.table.clear();
      e->col.column = "*";
      e->distinct = false;
    }
  };
  for (dvq::SelectExpr& e : out.query.select) fix_count(&e);
  if (out.query.order_by.has_value()) fix_count(&out.query.order_by->expr);

  // --- NULL-test style -----------------------------------------------------
  int is_not_null = 0;
  int ne_null = 0;
  for (const dvq::DVQ& ref : refs) {
    if (!ref.query.where.has_value()) continue;
    for (const dvq::Predicate& p : ref.query.where->predicates) {
      if (p.op == dvq::CompareOp::kIsNotNull) ++is_not_null;
      if (p.op == dvq::CompareOp::kNe && p.literal.has_value() &&
          p.literal->kind == dvq::Literal::Kind::kString &&
          strings::EqualsIgnoreCase(p.literal->string_value, "null")) {
        ++ne_null;
      }
    }
  }
  if (out.query.where.has_value()) {
    for (dvq::Predicate& p : out.query.where->predicates) {
      bool p_ne_null = p.op == dvq::CompareOp::kNe && p.literal.has_value() &&
                       p.literal->kind == dvq::Literal::Kind::kString &&
                       strings::EqualsIgnoreCase(p.literal->string_value,
                                                 "null");
      if (p_ne_null && is_not_null >= ne_null) {
        p.op = dvq::CompareOp::kIsNotNull;
        p.literal.reset();
      } else if (p.op == dvq::CompareOp::kIsNotNull && ne_null > is_not_null) {
        p.op = dvq::CompareOp::kNe;
        p.literal = dvq::Literal::Str("null");
      }
    }
  }

  // --- Subquery vs JOIN style ---------------------------------------------
  int with_join = 0;
  int with_subquery = 0;
  for (const dvq::DVQ& ref : refs) {
    if (!ref.query.joins.empty()) ++with_join;
    if (ref.query.where.has_value()) {
      for (const dvq::Predicate& p : ref.query.where->predicates) {
        if (p.subquery != nullptr) ++with_subquery;
      }
    }
  }
  if (out.query.where.has_value() && with_join > with_subquery) {
    std::vector<dvq::Predicate>& preds = out.query.where->predicates;
    for (dvq::Predicate& p : preds) {
      if (p.subquery == nullptr || p.op != dvq::CompareOp::kEq) continue;
      const dvq::Query& sub = *p.subquery;
      if (sub.select.size() != 1 || !sub.where.has_value() ||
          sub.where->predicates.size() != 1) {
        continue;
      }
      dvq::JoinClause join;
      join.table = sub.from_table;
      join.left.table = out.query.from_table;
      join.left.column = p.col.column;
      join.right.table = sub.from_table;
      join.right.column = sub.select[0].col.column;
      out.query.joins.push_back(std::move(join));
      // The subquery's predicate floats up to the outer WHERE.
      dvq::Predicate lifted = sub.where->predicates[0];
      p = std::move(lifted);
    }
  }

  // --- Alias style -----------------------------------------------------------
  int aliased = 0;
  int plain = 0;
  for (const dvq::DVQ& ref : refs) {
    if (ref.query.joins.empty()) continue;
    bool has_alias = !ref.query.from_alias.empty();
    for (const dvq::JoinClause& j : ref.query.joins) {
      has_alias = has_alias || !j.alias.empty();
    }
    if (has_alias) {
      ++aliased;
    } else {
      ++plain;
    }
  }
  if (plain >= aliased) {
    out.query = dvq::ResolveAliases(out.query);
  }

  return "### Modified DVQ:\n# " + out.ToString();
}

Result<std::string> SimulatedChatModel::CompleteDebug(
    const std::string& user) const {
  std::string schema_text =
      Section(user, "### Database Schemas:", "### Natural Language");
  GRED_ASSIGN_OR_RETURN(schema::Database db, ParseSchemaPrompt(schema_text));
  std::string annotations =
      Section(user, "### Natural Language Annotations:", "#### Given");
  std::vector<std::pair<std::string, std::vector<std::string>>> vocab;
  for (const std::string& raw : strings::Split(annotations, '\n')) {
    std::string line = strings::Trim(raw);
    if (!strings::StartsWith(line, "- ")) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string col = strings::Trim(line.substr(2, colon - 2));
    if (db.HasColumn(col)) {
      vocab.emplace_back(col, nl::ContentTokens(line.substr(colon + 1)));
    }
  }
  std::string original_text =
      strings::Trim(Section(user, "### Original DVQ:\n# ", "\nA:"));
  Result<dvq::DVQ> original = dvq::Parse(original_text);
  if (!original.ok()) {
    return "### Revised DVQ:\n# " + original_text;
  }
  dvq::DVQ out = std::move(original).value();
  SemanticLinkOptions link;
  link.only_missing = true;  // the prompt's NOTE: keep names that exist
  link.column_threshold = 0.35;
  link.mention_weight = 0.0;  // no question in this prompt
  link.annotations = &vocab;
  RelinkSchemaSemantically(&out.query, db, {}, *lexicon_, link);
  return "### Revised DVQ:\n# " + out.ToString();
}

}  // namespace gred::llm
