#ifndef GREDVIS_LLM_SEMANTIC_LINK_H_
#define GREDVIS_LLM_SEMANTIC_LINK_H_

#include <string>
#include <vector>

#include "dvq/ast.h"
#include "nl/lexicon.h"
#include "schema/schema.h"

namespace gred::llm {

/// Semantic (lexicon-aware) schema-linking utilities.
///
/// This is the capability the paper obtains from pretrained LLMs: the
/// knowledge that "wage" and "salary" name the same concept. The
/// simulated LLM and GRED's debugger link through these functions; the
/// baselines only ever use the lexical linkers in `models/linking.h`.

/// Identifier-to-identifier similarity in [0,1]: greedy word alignment
/// where word pairs score via the lexicon (same stem 1.0, same concept
/// 0.85) with a scaled edit-similarity fallback.
double SemanticNameSimilarity(const std::string& a, const std::string& b,
                              const nl::Lexicon& lexicon);

/// How strongly the NLQ mentions `column_name`, concept-aware: each
/// identifier word is matched to its best NLQ token by lexicon word
/// similarity.
double SemanticMentionScore(const std::vector<std::string>& nlq_tokens,
                            const std::string& column_name,
                            const nl::Lexicon& lexicon);

/// Soft token-set similarity between two texts (greedy best-match
/// average over content tokens). Used by the simulated LLM to pick the
/// most relevant in-context example.
double SoftTokenSimilarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           const nl::Lexicon& lexicon);

/// Options for semantic re-linking.
struct SemanticLinkOptions {
  double column_threshold = 0.5;
  double table_threshold = 0.45;
  double mention_weight = 0.45;
  bool only_missing = false;
  /// When false, references that do NOT resolve in the schema are left
  /// untouched (hallucinated names survive). GRED's generation stage
  /// runs in this mode: like the LLM it stands in for, it copies
  /// training-register names from the in-context examples; repairing
  /// them is the Annotation-based Debugger's job (Section 4.2).
  bool relink_missing = true;
  /// Exception to relink_missing=false: a missing reference may still be
  /// replaced when some schema column is *named by the question* with at
  /// least this mention score (an LLM grounds axes it can read off the
  /// question even when the example's column came from another
  /// database). 0 disables the rescue.
  double mention_rescue_threshold = 0.0;
  /// Optional per-column annotation words (column -> descriptive words);
  /// when present, annotation evidence joins the name evidence.
  const std::vector<std::pair<std::string, std::vector<std::string>>>*
      annotations = nullptr;
};

/// Re-links schema references of `query` against `db_schema` using
/// lexicon-aware similarity plus NLQ mention evidence. Recurses into
/// scalar subqueries.
void RelinkSchemaSemantically(dvq::Query* query,
                              const schema::Database& db_schema,
                              const std::vector<std::string>& nlq_tokens,
                              const nl::Lexicon& lexicon,
                              const SemanticLinkOptions& options);

}  // namespace gred::llm

#endif  // GREDVIS_LLM_SEMANTIC_LINK_H_
