#include "eval/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>

#include "analysis/analyzer.h"
#include "dvq/components.h"
#include "exec/executor.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace gred::eval {

namespace {

double Ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

std::size_t DefaultEvalThreads() {
  const char* value = std::getenv("GRED_BENCH_THREADS");
  if (value != nullptr) {
    std::optional<std::size_t> parsed = strings::ParsePositiveSize(value);
    if (parsed.has_value()) return *parsed;
    std::fprintf(stderr,
                 "[eval] ignoring invalid GRED_BENCH_THREADS=\"%s\" "
                 "(want a positive integer); using hardware concurrency\n",
                 value);
  }
  return HardwareThreads();
}

double MetricCounts::VisAcc() const { return Ratio(vis, total); }
double MetricCounts::AxisAcc() const { return Ratio(axis, total); }
double MetricCounts::DataAcc() const { return Ratio(data, total); }
double MetricCounts::OverallAcc() const { return Ratio(overall, total); }
double MetricCounts::ExecutionAcc() const { return Ratio(execution, total); }

void MetricCounts::Merge(const MetricCounts& other) {
  total += other.total;
  vis += other.vis;
  axis += other.axis;
  data += other.data;
  overall += other.overall;
  execution += other.execution;
  errors += other.errors;
  resource_exhausted += other.resource_exhausted;
  for (const auto& [code, count] : other.diagnostics) {
    diagnostics[code] += count;
  }
}

bool ExecutionMatch(const dvq::DVQ& predicted, const dvq::DVQ& target,
                    const storage::DatabaseData& db) {
  return ExecutionMatch(predicted, target, db, nullptr, nullptr);
}

bool ExecutionMatch(const dvq::DVQ& predicted, const dvq::DVQ& target,
                    const storage::DatabaseData& db, ExecContext* guard,
                    bool* resource_exhausted) {
  if (resource_exhausted != nullptr) *resource_exhausted = false;
  if (predicted.chart != target.chart) return false;
  exec::ExecOptions exec_options;
  exec_options.context = guard;
  Result<exec::ResultSet> a = exec::Execute(predicted, db, exec_options);
  Result<exec::ResultSet> b = exec::Execute(target, db, exec_options);
  if (resource_exhausted != nullptr &&
      ((!a.ok() && a.status().IsResourceExhausted()) ||
       (!b.ok() && b.status().IsResourceExhausted()))) {
    *resource_exhausted = true;
  }
  if (!a.ok() || !b.ok()) return false;
  if (a.value().num_rows() != b.value().num_rows() ||
      a.value().num_columns() != b.value().num_columns()) {
    return false;
  }
  auto rendered = [](const exec::ResultSet& rs) {
    std::vector<std::string> rows;
    rows.reserve(rs.num_rows());
    for (const auto& row : rs.rows) {
      std::string line;
      for (const storage::Value& cell : row) {
        line += cell.ToString();
        line += '\x1f';
      }
      rows.push_back(std::move(line));
    }
    return rows;
  };
  std::vector<std::string> rows_a = rendered(a.value());
  std::vector<std::string> rows_b = rendered(b.value());
  const bool ordered = target.query.order_by.has_value();
  if (!ordered) {
    std::sort(rows_a.begin(), rows_a.end());
    std::sort(rows_b.begin(), rows_b.end());
  }
  return rows_a == rows_b;
}

ExampleOutcome ScorePrediction(const dataset::Example& example,
                               const Result<dvq::DVQ>& prediction) {
  ExampleOutcome outcome;
  outcome.example = &example;
  if (!prediction.ok()) return outcome;
  const dvq::DVQ& pred = prediction.value();
  outcome.predicted = pred.ToString();
  outcome.vis = dvq::VisMatch(pred, example.dvq);
  outcome.axis = dvq::AxisMatch(pred, example.dvq);
  outcome.data = dvq::DataMatch(pred, example.dvq);
  outcome.overall = outcome.vis && outcome.axis && outcome.data;
  return outcome;
}

namespace {

/// Per-example evaluation unit: the outcome plus its metric increment.
struct ScoredExample {
  MetricCounts unit;
  ExampleOutcome outcome;
};

/// Scores one example. Pure with respect to the harness (the model must
/// be thread-safe); both the serial and the parallel path run exactly
/// this, which is what makes them bit-identical.
ScoredExample ScoreExample(
    const models::TextToVisModel& model, const dataset::Example& example,
    const std::vector<dataset::GeneratedDatabase>& databases,
    EvalTiming* timing, const GuardLimits& guard_limits, bool lint) {
  ScoredExample scored;
  scored.unit.total = 1;
  const dataset::GeneratedDatabase* db = nullptr;
  for (const dataset::GeneratedDatabase& candidate : databases) {
    if (strings::EqualsIgnoreCase(candidate.data.name(), example.db_name)) {
      db = &candidate;
      break;
    }
  }
  if (db == nullptr) {
    scored.unit.errors = 1;
    scored.outcome.example = &example;
    return scored;
  }
  Result<dvq::DVQ> prediction = [&] {
    ScopedTimer timer(timing == nullptr ? nullptr : &timing->translate);
    return model.Translate(example.nlq, db->data);
  }();
  scored.outcome = ScorePrediction(example, prediction);
  if (!prediction.ok()) scored.unit.errors = 1;
  if (lint && prediction.ok()) {
    // Observability only: the per-code tallies ride along in the unit's
    // diagnostics map and never influence the match metrics.
    analysis::DvqAnalyzer analyzer(&db->data.db_schema());
    analysis::CountByCode(analyzer.Analyze(prediction.value()),
                          &scored.unit.diagnostics);
  }
  if (prediction.ok()) {
    ScopedTimer timer(timing == nullptr ? nullptr : &timing->execute);
    if (guard_limits.Unlimited()) {
      scored.outcome.execution =
          ExecutionMatch(prediction.value(), example.dvq, db->data);
    } else {
      // Per-example watchdog: a fresh context per example so one
      // pathological query cannot eat a later example's budget.
      ExecContext guard(guard_limits);
      scored.outcome.execution =
          ExecutionMatch(prediction.value(), example.dvq, db->data, &guard,
                         &scored.outcome.resource_exhausted);
    }
  }
  scored.unit.vis = scored.outcome.vis ? 1 : 0;
  scored.unit.axis = scored.outcome.axis ? 1 : 0;
  scored.unit.data = scored.outcome.data ? 1 : 0;
  scored.unit.overall = scored.outcome.overall ? 1 : 0;
  scored.unit.execution = scored.outcome.execution ? 1 : 0;
  scored.unit.resource_exhausted = scored.outcome.resource_exhausted ? 1 : 0;
  return scored;
}

}  // namespace

EvalResult Evaluate(
    const models::TextToVisModel& model,
    const std::vector<dataset::Example>& test,
    const std::vector<dataset::GeneratedDatabase>& databases,
    const std::string& test_set_name,
    const std::function<void(const ExampleOutcome&)>& on_example,
    const EvalOptions& options) {
  EvalResult result;
  result.model_name = model.name();
  result.test_set = test_set_name;
  const std::size_t n = test.size();
  std::size_t threads =
      options.num_threads == 0 ? DefaultEvalThreads() : options.num_threads;
  threads = std::min(threads, std::max<std::size_t>(1, n));
  std::vector<ScoredExample> scored(n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      scored[i] = ScoreExample(model, test[i], databases, options.timing,
                               options.guard, options.lint);
    }
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(pool.Submit([&model, &test, &databases, &scored,
                                     timing = options.timing,
                                     guard = options.guard,
                                     lint = options.lint, i] {
        scored[i] =
            ScoreExample(model, test[i], databases, timing, guard, lint);
      }));
    }
    for (std::future<void>& future : futures) future.get();  // rethrows
  }
  // Deterministic merge: input order, independent of worker scheduling.
  for (std::size_t i = 0; i < n; ++i) {
    result.counts.Merge(scored[i].unit);
    result.by_hardness[dataset::HardnessName(test[i].hardness)].Merge(
        scored[i].unit);
    result.by_chart[dvq::ChartTypeName(test[i].dvq.chart)].Merge(
        scored[i].unit);
    if (on_example) on_example(scored[i].outcome);
  }
  return result;
}

}  // namespace gred::eval
