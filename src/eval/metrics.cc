#include "eval/metrics.h"

#include <algorithm>

#include "dvq/components.h"
#include "exec/executor.h"
#include "util/strings.h"

namespace gred::eval {

namespace {

double Ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

double MetricCounts::VisAcc() const { return Ratio(vis, total); }
double MetricCounts::AxisAcc() const { return Ratio(axis, total); }
double MetricCounts::DataAcc() const { return Ratio(data, total); }
double MetricCounts::OverallAcc() const { return Ratio(overall, total); }
double MetricCounts::ExecutionAcc() const { return Ratio(execution, total); }

void MetricCounts::Merge(const MetricCounts& other) {
  total += other.total;
  vis += other.vis;
  axis += other.axis;
  data += other.data;
  overall += other.overall;
  execution += other.execution;
  errors += other.errors;
}

bool ExecutionMatch(const dvq::DVQ& predicted, const dvq::DVQ& target,
                    const storage::DatabaseData& db) {
  if (predicted.chart != target.chart) return false;
  Result<exec::ResultSet> a = exec::Execute(predicted, db);
  Result<exec::ResultSet> b = exec::Execute(target, db);
  if (!a.ok() || !b.ok()) return false;
  if (a.value().num_rows() != b.value().num_rows() ||
      a.value().num_columns() != b.value().num_columns()) {
    return false;
  }
  auto rendered = [](const exec::ResultSet& rs) {
    std::vector<std::string> rows;
    rows.reserve(rs.num_rows());
    for (const auto& row : rs.rows) {
      std::string line;
      for (const storage::Value& cell : row) {
        line += cell.ToString();
        line += '\x1f';
      }
      rows.push_back(std::move(line));
    }
    return rows;
  };
  std::vector<std::string> rows_a = rendered(a.value());
  std::vector<std::string> rows_b = rendered(b.value());
  const bool ordered = target.query.order_by.has_value();
  if (!ordered) {
    std::sort(rows_a.begin(), rows_a.end());
    std::sort(rows_b.begin(), rows_b.end());
  }
  return rows_a == rows_b;
}

ExampleOutcome ScorePrediction(const dataset::Example& example,
                               const Result<dvq::DVQ>& prediction) {
  ExampleOutcome outcome;
  outcome.example = &example;
  if (!prediction.ok()) return outcome;
  const dvq::DVQ& pred = prediction.value();
  outcome.predicted = pred.ToString();
  outcome.vis = dvq::VisMatch(pred, example.dvq);
  outcome.axis = dvq::AxisMatch(pred, example.dvq);
  outcome.data = dvq::DataMatch(pred, example.dvq);
  outcome.overall = outcome.vis && outcome.axis && outcome.data;
  return outcome;
}

EvalResult Evaluate(
    const models::TextToVisModel& model,
    const std::vector<dataset::Example>& test,
    const std::vector<dataset::GeneratedDatabase>& databases,
    const std::string& test_set_name,
    const std::function<void(const ExampleOutcome&)>& on_example) {
  EvalResult result;
  result.model_name = model.name();
  result.test_set = test_set_name;
  for (const dataset::Example& example : test) {
    const dataset::GeneratedDatabase* db = nullptr;
    for (const dataset::GeneratedDatabase& candidate : databases) {
      if (strings::EqualsIgnoreCase(candidate.data.name(),
                                    example.db_name)) {
        db = &candidate;
        break;
      }
    }
    MetricCounts unit;
    unit.total = 1;
    ExampleOutcome outcome;
    if (db == nullptr) {
      unit.errors = 1;
      outcome.example = &example;
    } else {
      Result<dvq::DVQ> prediction = model.Translate(example.nlq, db->data);
      outcome = ScorePrediction(example, prediction);
      if (!prediction.ok()) unit.errors = 1;
      if (prediction.ok()) {
        outcome.execution =
            ExecutionMatch(prediction.value(), example.dvq, db->data);
      }
      unit.vis = outcome.vis ? 1 : 0;
      unit.axis = outcome.axis ? 1 : 0;
      unit.data = outcome.data ? 1 : 0;
      unit.overall = outcome.overall ? 1 : 0;
      unit.execution = outcome.execution ? 1 : 0;
    }
    result.counts.Merge(unit);
    result.by_hardness[dataset::HardnessName(example.hardness)].Merge(unit);
    result.by_chart[dvq::ChartTypeName(example.dvq.chart)].Merge(unit);
    if (on_example) on_example(outcome);
  }
  return result;
}

}  // namespace gred::eval
