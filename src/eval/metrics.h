#ifndef GREDVIS_EVAL_METRICS_H_
#define GREDVIS_EVAL_METRICS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dataset/benchmark.h"
#include "models/model.h"
#include "util/resource_guard.h"
#include "util/timing.h"

namespace gred::eval {

/// Raw match counts for the four metrics of Appendix A, plus execution
/// accuracy (an extension: does the predicted query produce the same
/// rows as the target when run against the live database?).
struct MetricCounts {
  std::size_t total = 0;
  std::size_t vis = 0;        // chart-type matches
  std::size_t axis = 0;       // x/y-axis component matches
  std::size_t data = 0;       // data-transformation matches
  std::size_t overall = 0;    // exact matches
  std::size_t execution = 0;  // result-set matches (chart type included)
  std::size_t errors = 0;     // model returned an error / unparseable DVQ
  /// Examples whose guarded execution tripped a resource budget
  /// (EvalOptions::guard); always 0 when the watchdog is off.
  std::size_t resource_exhausted = 0;
  /// Static-analysis findings over the parsed predictions, counted per
  /// diagnostic code ("DVQ002" -> 3). Populated only when
  /// EvalOptions::lint is on; empty otherwise, so default-constructed
  /// equality with pre-lint results still holds.
  std::map<std::string, std::size_t> diagnostics;

  /// All accuracy accessors return 0.0 (never NaN) when `total == 0`,
  /// so empty per-hardness / per-chart buckets render as 0% in tables.
  double VisAcc() const;
  double AxisAcc() const;
  double DataAcc() const;
  double OverallAcc() const;
  double ExecutionAcc() const;

  void Merge(const MetricCounts& other);

  friend bool operator==(const MetricCounts& a,
                         const MetricCounts& b) = default;
};

/// Per-example evaluation record (kept by the harness for case studies).
struct ExampleOutcome {
  const dataset::Example* example = nullptr;
  std::string predicted;   // empty when the model errored
  bool vis = false;
  bool axis = false;
  bool data = false;
  bool overall = false;
  bool execution = false;
  /// True when the per-example watchdog tripped while execution-matching
  /// this prediction (the example scores as a non-match but the harness
  /// terminated it with a typed kResourceExhausted, never a hang).
  bool resource_exhausted = false;
};

/// True when both queries execute against `db` and produce the same
/// multiset of result rows (order-insensitive unless the target sorts)
/// and the same chart type. An exact match always execution-matches.
bool ExecutionMatch(const dvq::DVQ& predicted, const dvq::DVQ& target,
                    const storage::DatabaseData& db);

/// Guarded variant: both executions run under `guard` (may be null =
/// unguarded). When either execution trips the guard the match is false
/// and `*resource_exhausted` (optional) is set.
bool ExecutionMatch(const dvq::DVQ& predicted, const dvq::DVQ& target,
                    const storage::DatabaseData& db, ExecContext* guard,
                    bool* resource_exhausted);

/// Full evaluation result with per-hardness and per-chart breakdowns.
struct EvalResult {
  std::string model_name;
  std::string test_set;
  MetricCounts counts;
  std::map<std::string, MetricCounts> by_hardness;
  std::map<std::string, MetricCounts> by_chart;

  friend bool operator==(const EvalResult& a, const EvalResult& b) = default;
};

/// Aggregate wall-clock time spent inside the harness, split by stage.
/// Thread-safe; under a parallel run the stage totals sum time across
/// workers, so they can exceed the elapsed wall clock.
struct EvalTiming {
  AtomicDuration translate;  // models::TextToVisModel::Translate
  AtomicDuration execute;    // ExecutionMatch (query execution + compare)
};

/// Knobs for `Evaluate`.
struct EvalOptions {
  /// Worker threads scoring examples. 0 means `DefaultEvalThreads()`;
  /// 1 forces the serial path. Any value yields bit-identical
  /// `EvalResult`s: outcomes are merged in input order regardless of
  /// completion order.
  std::size_t num_threads = 0;
  /// Optional stage-timing sink (not owned; may be null).
  EvalTiming* timing = nullptr;
  /// Per-example watchdog (util/resource_guard.h): when any field is
  /// nonzero each example's execution-match runs under a fresh
  /// ExecContext with these limits, so a pathological query terminates
  /// with kResourceExhausted (counted in MetricCounts::resource_exhausted)
  /// instead of monopolizing a worker. Default: unguarded, bit-identical
  /// to the pre-guard harness.
  GuardLimits guard;
  /// When true every parsed prediction is additionally run through the
  /// static analyzer (analysis::DvqAnalyzer) against its example's
  /// database schema and the findings are tallied per code into
  /// MetricCounts::diagnostics. Scoring is unaffected — linting only
  /// adds observability. Default off (MetricCounts::diagnostics empty,
  /// results bit-identical to the pre-lint harness).
  bool lint = false;
};

/// Worker count used when `EvalOptions::num_threads == 0`: the
/// `GRED_BENCH_THREADS` environment override when it parses as a
/// positive integer (a warning is printed and the override ignored
/// otherwise), else the hardware concurrency.
std::size_t DefaultEvalThreads();

/// Scores one prediction against the target (component metrics).
ExampleOutcome ScorePrediction(const dataset::Example& example,
                               const Result<dvq::DVQ>& prediction);

/// Evaluates `model` over `test`, resolving each example's database in
/// `databases` (pass the clean corpus for nvBench / nvBench-Rob_nlq and
/// the perturbed corpus for the schema-variant sets).
///
/// `on_example` (optional) observes every outcome, always in input
/// order (even when scoring runs on several threads).
///
/// With `options.num_threads != 1` examples are scored concurrently on
/// an internal ThreadPool; `model.Translate` must therefore be
/// thread-safe (see models::TextToVisModel). Results are merged in
/// input order, so the parallel path is bit-identical to the serial one.
EvalResult Evaluate(
    const models::TextToVisModel& model,
    const std::vector<dataset::Example>& test,
    const std::vector<dataset::GeneratedDatabase>& databases,
    const std::string& test_set_name,
    const std::function<void(const ExampleOutcome&)>& on_example = nullptr,
    const EvalOptions& options = {});

}  // namespace gred::eval

#endif  // GREDVIS_EVAL_METRICS_H_
