#ifndef GREDVIS_EVAL_METRICS_H_
#define GREDVIS_EVAL_METRICS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dataset/benchmark.h"
#include "models/model.h"

namespace gred::eval {

/// Raw match counts for the four metrics of Appendix A, plus execution
/// accuracy (an extension: does the predicted query produce the same
/// rows as the target when run against the live database?).
struct MetricCounts {
  std::size_t total = 0;
  std::size_t vis = 0;        // chart-type matches
  std::size_t axis = 0;       // x/y-axis component matches
  std::size_t data = 0;       // data-transformation matches
  std::size_t overall = 0;    // exact matches
  std::size_t execution = 0;  // result-set matches (chart type included)
  std::size_t errors = 0;     // model returned an error / unparseable DVQ

  double VisAcc() const;
  double AxisAcc() const;
  double DataAcc() const;
  double OverallAcc() const;
  double ExecutionAcc() const;

  void Merge(const MetricCounts& other);
};

/// Per-example evaluation record (kept by the harness for case studies).
struct ExampleOutcome {
  const dataset::Example* example = nullptr;
  std::string predicted;   // empty when the model errored
  bool vis = false;
  bool axis = false;
  bool data = false;
  bool overall = false;
  bool execution = false;
};

/// True when both queries execute against `db` and produce the same
/// multiset of result rows (order-insensitive unless the target sorts)
/// and the same chart type. An exact match always execution-matches.
bool ExecutionMatch(const dvq::DVQ& predicted, const dvq::DVQ& target,
                    const storage::DatabaseData& db);

/// Full evaluation result with per-hardness and per-chart breakdowns.
struct EvalResult {
  std::string model_name;
  std::string test_set;
  MetricCounts counts;
  std::map<std::string, MetricCounts> by_hardness;
  std::map<std::string, MetricCounts> by_chart;
};

/// Scores one prediction against the target (component metrics).
ExampleOutcome ScorePrediction(const dataset::Example& example,
                               const Result<dvq::DVQ>& prediction);

/// Evaluates `model` over `test`, resolving each example's database in
/// `databases` (pass the clean corpus for nvBench / nvBench-Rob_nlq and
/// the perturbed corpus for the schema-variant sets).
///
/// `on_example` (optional) observes every outcome as it is produced.
EvalResult Evaluate(
    const models::TextToVisModel& model,
    const std::vector<dataset::Example>& test,
    const std::vector<dataset::GeneratedDatabase>& databases,
    const std::string& test_set_name,
    const std::function<void(const ExampleOutcome&)>& on_example = nullptr);

}  // namespace gred::eval

#endif  // GREDVIS_EVAL_METRICS_H_
