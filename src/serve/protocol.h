#ifndef GREDVIS_SERVE_PROTOCOL_H_
#define GREDVIS_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "util/json.h"
#include "util/resource_guard.h"
#include "util/status.h"

namespace gred::serve {

/// The wire protocol is newline-delimited JSON (one request object per
/// line, one response object per line; see DESIGN.md §13 for the full
/// grammar). Requests:
///
///   {"id": <any>, "nlq": "<question>", "db": "<database>",
///    "deadline_ms": <number>, "budget_rows": <number>, "chart": <bool>}
///   {"id": <any>, "type": "stats"}
///
/// `id` is echoed verbatim into the response so clients can match
/// responses arriving in completion order. `schema` is accepted as an
/// alias for `db`. Responses always carry `"ok"`; errors add `"error"`
/// (message) and `"code"` (stable StatusCode name).

/// Hard cap on one request line. Longer lines are rejected with
/// kInvalidArgument before JSON parsing — the first line of defense for
/// untrusted bytes (the parser's own caps are the second).
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;  // 1 MiB

/// Deterministic conversion from the wire's `deadline_ms` to accounted
/// ticks (util/resource_guard.h): the SLO is enforced in the guard
/// layer's deterministic work units, not wall clock, so a request trips
/// at the same point on every machine and every replay. 1 ms is
/// calibrated as 1000 accounted ticks (~1 tick/µs at the executor's
/// row-visit granularity on commodity hardware).
inline constexpr std::uint64_t kAccountedTicksPerMs = 1000;

enum class RequestType {
  kTranslate,  // default: NLQ -> DVQ -> chart
  kStats,      // dashboard endpoint: cache hit rates + stage counters
};

/// A validated request, decoded from one wire line.
struct Request {
  RequestType type = RequestType::kTranslate;
  /// Echoed into the response; kNull when the client sent none.
  json::Value id;
  std::string nlq;
  std::string db;
  /// Per-request SLO from `deadline_ms` / `budget_rows`; zero fields
  /// fall back to the server's default limits.
  GuardLimits limits;
  /// Include the Vega-Lite spec in the response (`"chart": false` for
  /// trace replays that only need the DVQ).
  bool want_chart = true;
};

/// Parses and validates one request line. Errors are typed: oversized
/// lines and schema violations are kInvalidArgument, malformed JSON is
/// kParseError; the caller turns either into an error response.
Result<Request> ParseRequest(const std::string& line);

/// Renders an error response: {"id":...,"ok":false,"error":...,"code":...}.
/// `id` may be null (unparseable requests have no echoable id).
std::string ErrorResponse(const json::Value* id, const Status& status);

/// Renders the admission-control rejection, `{"error":"overloaded"}`
/// with the standard envelope. Sent when the bounded queue is full —
/// the server sheds load instead of queuing unboundedly.
std::string OverloadedResponse(const json::Value* id);

}  // namespace gred::serve

#endif  // GREDVIS_SERVE_PROTOCOL_H_
