#ifndef GREDVIS_SERVE_PROTOCOL_H_
#define GREDVIS_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "util/json.h"
#include "util/resource_guard.h"
#include "util/status.h"

namespace gred::serve {

/// The wire protocol is newline-delimited JSON (one request object per
/// line, one response object per line; see DESIGN.md §13/§16 for the
/// full grammar). Requests:
///
///   {"id": <any>, "nlq": "<question>", "db": "<database>",
///    "session": "<key>", "deadline_ms": <number>,
///    "budget_rows": <number>, "chart": <bool>}
///   {"id": <any>, "type": "stats"}
///   {"id": <any>, "type": "reload"}
///
/// `id` is echoed verbatim into the response so clients can match
/// responses arriving in completion order. `schema` is accepted as an
/// alias for `db`. `session` names the client's token bucket when
/// per-session rate limiting is armed (missing = the anonymous
/// bucket). `reload` swaps the serving epoch (suite + pipeline) without
/// dropping the queue. Responses always carry `"ok"`; errors add
/// `"error"` (message) and `"code"` (stable StatusCode name). The
/// backpressure rejections are distinguishable by their `error` field:
/// "overloaded" (queue full — retry soon), "rate_limited" (this
/// session's bucket is empty — slow down) and "shutting_down" (the
/// server is draining — do not retry here).

/// Hard cap on one request line. Longer lines are rejected with
/// kInvalidArgument before JSON parsing — the first line of defense for
/// untrusted bytes (the parser's own caps are the second).
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;  // 1 MiB

/// Deterministic conversion from the wire's `deadline_ms` to accounted
/// ticks (util/resource_guard.h): the SLO is enforced in the guard
/// layer's deterministic work units, not wall clock, so a request trips
/// at the same point on every machine and every replay. 1 ms is
/// calibrated as 1000 accounted ticks (~1 tick/µs at the executor's
/// row-visit granularity on commodity hardware).
inline constexpr std::uint64_t kAccountedTicksPerMs = 1000;

enum class RequestType {
  kTranslate,  // default: NLQ -> DVQ -> chart
  kStats,      // dashboard endpoint: cache hit rates + stage counters
  kReload,     // control: swap the serving epoch (suite + pipeline)
};

/// A validated request, decoded from one wire line.
struct Request {
  RequestType type = RequestType::kTranslate;
  /// Echoed into the response; kNull when the client sent none.
  json::Value id;
  std::string nlq;
  std::string db;
  /// Rate-limit bucket key (`"session"` on the wire); empty = the
  /// anonymous bucket shared by session-less clients.
  std::string session;
  /// Per-request SLO from `deadline_ms` / `budget_rows`; zero fields
  /// fall back to the server's default limits.
  GuardLimits limits;
  /// Include the Vega-Lite spec in the response (`"chart": false` for
  /// trace replays that only need the DVQ).
  bool want_chart = true;
};

/// Parses and validates one request line. Errors are typed: oversized
/// lines and schema violations are kInvalidArgument, malformed JSON is
/// kParseError; the caller turns either into an error response.
Result<Request> ParseRequest(const std::string& line);

/// Renders an error response: {"id":...,"ok":false,"error":...,"code":...}.
/// `id` may be null (unparseable requests have no echoable id).
std::string ErrorResponse(const json::Value* id, const Status& status);

/// Renders the admission-control rejection, `{"error":"overloaded"}`
/// with the standard envelope. Sent when the bounded queue is full —
/// the server sheds load instead of queuing unboundedly.
std::string OverloadedResponse(const json::Value* id);

/// Renders the rate-limit rejection, `{"error":"rate_limited"}`. Sent
/// when the request's session token bucket is empty; distinct from
/// "overloaded" so clients can tell "the server is busy" from "you,
/// specifically, are over your budget".
std::string RateLimitedResponse(const json::Value* id);

/// Renders the drain rejection, `{"error":"shutting_down"}`. Sent for
/// requests arriving after the server began draining; distinct from
/// "overloaded" because retrying against a draining server is futile.
std::string ShuttingDownResponse(const json::Value* id);

}  // namespace gred::serve

#endif  // GREDVIS_SERVE_PROTOCOL_H_
