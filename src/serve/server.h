#ifndef GREDVIS_SERVE_SERVER_H_
#define GREDVIS_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/cost_estimator.h"
#include "dataset/benchmark.h"
#include "gred/gred.h"
#include "llm/circuit_breaker.h"
#include "serve/protocol.h"
#include "util/thread_pool.h"

namespace gred::serve {

/// Invoked exactly once per submitted request with the finished
/// response line (no trailing newline). Called from a worker thread for
/// queued work, or inline from Submit for rejections, parse errors and
/// stats requests.
using ResponseCallback = std::function<void(const std::string&)>;

/// One admitted unit of work: a validated translate request plus its
/// completion callback, stamped with the admission decision.
struct Job {
  Request request;
  ResponseCallback done;
  /// True when the request was admitted in brownout (degraded) mode:
  /// the worker skips the retuner/debugger stages and tightens the
  /// effective guard limits (DESIGN.md §16).
  bool brownout = false;
};

/// A bounded MPMC queue — the server's admission control. TryPush
/// refuses when the queue is at capacity (kFull) or closed (kClosed),
/// so overload sheds immediately instead of growing an unbounded
/// backlog — and the two refusals are distinguishable, because they
/// demand different client behavior ("retry soon" vs "this server is
/// going away"). Pop blocks until work arrives or the queue is closed
/// *and* drained, which is what makes shutdown clean: close, then let
/// workers finish everything already admitted.
class RequestQueue {
 public:
  enum class PushResult { kAccepted, kFull, kClosed };

  explicit RequestQueue(std::size_t capacity);

  /// Admits `job` unless the queue is full or closed (in which case
  /// `job` is left untouched — the caller still owns it). Thread-safe.
  PushResult TryPush(Job&& job);
  /// Blocks for the next job; returns false when closed and empty.
  bool Pop(Job* out);
  /// No further admissions; Pop drains the backlog then returns false.
  void Close();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<Job> queue_;
  bool closed_ = false;
};

/// Per-session token buckets with a deterministic, wall-clock-free
/// refill: the "clock" is the server-wide count of admitted requests.
/// Every admission anywhere advances it by one tick; a session's bucket
/// refills by `refill_per_request` tokens per tick elapsed since that
/// session was last seen, capped at `burst`. A request costs one token;
/// an empty bucket rejects (and does not advance the clock, so spam
/// from a limited session cannot refill itself). Buckets start full —
/// a new session gets its burst immediately.
///
/// Determinism: the outcome is a pure function of the admission
/// sequence, so a replayed trace rate-limits at exactly the same
/// requests on every run. Thread-safe (single mutex; the admission path
/// is a handful of map operations).
class SessionRateLimiter {
 public:
  /// `refill_per_request` in [0,1]: steady-state admitted fraction of
  /// the server's admission stream per session. `burst`: bucket
  /// capacity (>= 1 to ever admit).
  SessionRateLimiter(double refill_per_request, double burst);

  /// True if `session` may proceed (consumes a token and advances the
  /// shared clock).
  bool Admit(const std::string& session);

  std::uint64_t clock() const;

 private:
  const double refill_;
  const double burst_;
  mutable std::mutex mu_;
  std::uint64_t ticks_ = 0;  // admitted requests, server-wide
  struct Bucket {
    double tokens = 0.0;
    std::uint64_t last_tick = 0;
  };
  std::map<std::string, Bucket> buckets_;
};

/// Per-stream connection state: serializes response lines onto one
/// output stream (workers finish in completion order, so concurrent
/// writes must not interleave) and counts what flowed through.
class Session {
 public:
  explicit Session(std::ostream* out) : out_(out) {}

  /// Writes one response line (appends '\n' and flushes). Thread-safe.
  void Write(const std::string& response_line);

  std::uint64_t responses_written() const {
    return responses_.load(std::memory_order_relaxed);
  }

 private:
  std::ostream* out_;  // not owned
  std::mutex mu_;
  std::atomic<std::uint64_t> responses_{0};
};

/// One immutable serving generation: the corpus the server answers
/// from, plus the pipeline built over it. Requests pin the epoch they
/// started on via shared_ptr — a hot reload installs a new epoch for
/// subsequent admissions while in-flight work finishes on the old one,
/// which stays alive exactly as long as someone still holds it.
struct ServingEpoch {
  std::uint64_t epoch = 1;
  std::shared_ptr<const dataset::BenchmarkSuite> suite;
  std::shared_ptr<const core::Gred> gred;
};

/// What a reload produces: a fresh suite and a pipeline built over it
/// (the server assigns the epoch number). The handler runs inline on
/// the thread that submitted the `{"type":"reload"}` request; workers
/// keep draining the queue against the old epoch meanwhile.
struct EpochPayload {
  std::shared_ptr<const dataset::BenchmarkSuite> suite;
  std::shared_ptr<const core::Gred> gred;
};
using ReloadHandler = std::function<Result<EpochPayload>()>;

/// Server configuration.
struct ServerOptions {
  /// Worker threads draining the request queue. 0 = HardwareThreads().
  std::size_t num_workers = 0;
  /// Admission-control bound: requests beyond this backlog are rejected
  /// with {"error":"overloaded"} instead of queued.
  std::size_t queue_capacity = 64;
  /// Stamp per-stage timings (µs) into responses. Off = responses are
  /// byte-deterministic, which the replay-identity bench and tests use.
  bool include_timings = true;
  /// SLO applied to requests that carry no deadline_ms / budget_rows of
  /// their own (field-by-field: a request overrides only what it sets).
  GuardLimits default_limits;

  /// Static admission pricing (DESIGN.md §17): when true, every
  /// translated DVQ is priced by analysis::CostEstimator against the
  /// request's effective (merged, possibly brownout-tightened) limits
  /// *before* any executor work. A provably over-budget query is
  /// rejected with a typed `"error":"cost_exceeded"` response carrying
  /// the estimate, so a hopeless cross-join never occupies a worker for
  /// its whole deadline just to trip the guard. The estimate is an
  /// upper bound on the executor's charges, so a gated request would
  /// necessarily have tripped at runtime — the gate only converts slow
  /// failures into instant ones. Fail-open: an estimator error (e.g. a
  /// DVQ whose names do not resolve) falls through to normal execution.
  bool cost_gate = false;

  /// Brownout load-shedding (0 = off): when the queue depth at
  /// admission reaches `brownout_high_watermark`, subsequent translate
  /// admissions enter degraded mode — retuner/debugger skipped,
  /// `brownout_limits` tightening the effective guards, and the
  /// response flagged `"degraded":{"brownout":true}` — until the depth
  /// falls back to `brownout_low_watermark` (hysteresis). The reject
  /// cliff at queue_capacity still exists; brownout turns the approach
  /// to it into a quality slope instead of a wall.
  std::size_t brownout_high_watermark = 0;
  std::size_t brownout_low_watermark = 0;
  /// Tighter per-request limits while browned out. Non-zero fields cap
  /// (min with) the request's merged limits; zero fields change
  /// nothing.
  GuardLimits brownout_limits;

  /// Per-session token-bucket rate limiting (off unless both > 0):
  /// `rate_burst` tokens per bucket, `rate_refill_per_request` tokens
  /// refilled per server-wide admitted request. Rejections answer
  /// {"error":"rate_limited"} inline.
  double rate_refill_per_request = 0.0;
  double rate_burst = 0.0;

  /// Hot-reload hook for `{"type":"reload"}` control requests; null =
  /// reload requests fail with Unimplemented.
  ReloadHandler reload_handler;

  /// Optional circuit breaker in the LLM stack (borrowed; may be
  /// null). The server never calls it — it only surfaces its
  /// trip/reset counters through the stats endpoint.
  const llm::CircuitBreakerChatModel* breaker = nullptr;
};

/// Monotonic counters for the stats endpoint (snapshot; consistent
/// enough for dashboards, not a barrier).
struct ServerStats {
  std::uint64_t received = 0;           // lines submitted
  std::uint64_t rejected_overload = 0;  // shed by admission control
  std::uint64_t rejected_invalid = 0;   // parse/validation failures
  std::uint64_t rejected_ratelimit = 0; // session bucket empty
  std::uint64_t rejected_shutdown = 0;  // arrived while draining
  std::uint64_t completed = 0;          // translate responses, ok=true
  std::uint64_t failed = 0;             // translate responses, ok=false
  std::uint64_t resource_exhausted = 0; // subset of failed: budget trips
  std::uint64_t rejected_cost = 0;      // subset of failed: priced over budget
  std::uint64_t degraded_brownout = 0;  // translate admissions in brownout
  std::uint64_t stats_requests = 0;
  std::uint64_t reload_requests = 0;    // control requests (ok or not)
  std::uint64_t reloads_ok = 0;         // subset that installed an epoch
  std::uint64_t epoch = 1;              // current serving epoch
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t workers = 0;
  bool brownout_active = false;

  /// The accounting invariant the chaos harness leans on: after a
  /// drained run, every received line is accounted for exactly once.
  /// (`resource_exhausted`, `rejected_cost` and `degraded_brownout` are
  /// subsets of `failed`/`completed`, not separate outcomes;
  /// `reloads_ok` is a subset of `reload_requests`.)
  bool Balanced() const {
    return received == rejected_overload + rejected_invalid +
                           rejected_ratelimit + rejected_shutdown +
                           completed + failed + stats_requests +
                           reload_requests;
  }
};

/// The long-lived serving loop (DESIGN.md §13, hardened in §16):
/// newline-delimited JSON requests in, JSON responses out, a bounded
/// worker pool over the shared ThreadPool, and one shared Gred instance
/// per epoch so every session hits the same CachingEmbedder and
/// annotation caches.
///
/// Request flow: Submit parses and validates on the caller's thread
/// (cheap, and rejections must not consume queue slots), answers stats
/// and reload requests inline, applies per-session rate limiting, and
/// admits translate work through the bounded RequestQueue — full queue
/// means an immediate overload rejection, closed queue a shutting_down
/// rejection. Between the brownout watermarks, admissions are degraded
/// instead of rejected. Workers pop, snapshot the current epoch,
/// translate under that epoch's Gred, execute the DVQ under the
/// request's own ExecContext (deadline_ms/budget_rows — PR 4's guards
/// as the SLO layer), and complete the callback.
///
/// Determinism: with include_timings=false and every resilience knob
/// off (no watermarks, no rate limiting, no reloads), concurrent
/// responses are byte-identical to a serial Handle() replay of the same
/// requests (asserted by serve_test, serve_sweep and chaos_sweep).
class Server {
 public:
  /// `suite` resolves database names; `gred` is the shared translation
  /// pipeline. Both are borrowed and must outlive the server (they
  /// become epoch 1; a reload replaces them with owned snapshots).
  Server(const dataset::BenchmarkSuite* suite, const core::Gred* gred,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Asynchronous entry point: admission control now, completion later
  /// (or immediately for rejections/stats/reloads). `done` runs exactly
  /// once.
  void Submit(const std::string& line, ResponseCallback done);

  /// Synchronous reference path: processes one request line to its
  /// response on the calling thread, bypassing the queue, rate limiter
  /// and brownout machinery. This is the single-threaded batch baseline
  /// the concurrent path is checked against (it shares all per-request
  /// code with the workers). Counters move exactly as they do for
  /// Submit, so ServerStats::Balanced() holds for mixed workloads.
  /// (Non-const because a reload line installs a new epoch.)
  std::string Handle(const std::string& line);

  /// Runs the blocking serve loop: one request per input line, one
  /// response per request on `out` in completion order. Returns after
  /// EOF — or after `*stop` becomes true (the signal-driven drain path:
  /// the CLI's SIGTERM/SIGINT handler sets the flag and interrupts the
  /// blocking read) — once every admitted request has been answered.
  /// Empty lines are ignored (convenient for hand-typed sessions and
  /// trace files).
  int ServeStream(std::istream& in, std::ostream& out,
                  const std::atomic<bool>* stop = nullptr);

  /// Closes the queue to new admissions without joining workers:
  /// subsequent submits answer {"error":"shutting_down"} while admitted
  /// work keeps draining. Idempotent; Shutdown implies it.
  void BeginDrain();

  /// Closes the queue, drains admitted work, joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// Installs a new serving epoch from the configured reload handler.
  /// Returns the new epoch number; in-flight requests finish on the
  /// epoch they snapshotted. (The `{"type":"reload"}` wire request is
  /// exactly this, answered inline.)
  Result<std::uint64_t> Reload();

  /// The epoch new requests will snapshot (tests use this to observe
  /// reload semantics; holding the returned pointer pins the epoch).
  std::shared_ptr<const ServingEpoch> current_epoch() const;

  ServerStats stats() const;

  const ServerOptions& options() const { return options_; }

 private:
  /// Executes one validated translate request (workers + Handle share
  /// this; determinism of the serve layer = determinism of this
  /// function given a request and a brownout flag).
  std::string Process(const Request& request, bool brownout) const;
  /// Renders the stats response for the dashboard endpoint.
  std::string StatsResponse(const Request& request) const;
  /// Renders the reload response (runs the handler inline).
  std::string ReloadResponse(const Request& request);
  /// Admission-time brownout decision (updates the hysteresis latch).
  bool DecideBrownout();
  /// Cached cost estimator for one database (estimators memoize table
  /// statistics, so sharing one per database across requests keeps the
  /// gate O(1) after the first pricing). Keyed by data pointer: stable
  /// for a database's lifetime, and an epoch's databases outlive every
  /// request pinned to it.
  std::shared_ptr<analysis::CostEstimator> CostEstimatorFor(
      const storage::DatabaseData* data) const;

  ServerOptions options_;
  RequestQueue queue_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> workers_;
  bool shut_down_ = false;
  std::mutex shutdown_mu_;

  mutable std::mutex epoch_mu_;
  std::shared_ptr<const ServingEpoch> epoch_;

  std::unique_ptr<SessionRateLimiter> limiter_;  // null = rate limit off
  mutable std::mutex brownout_mu_;
  bool brownout_active_ = false;

  mutable std::atomic<std::uint64_t> received_{0};
  mutable std::atomic<std::uint64_t> rejected_overload_{0};
  mutable std::atomic<std::uint64_t> rejected_invalid_{0};
  mutable std::atomic<std::uint64_t> rejected_ratelimit_{0};
  mutable std::atomic<std::uint64_t> rejected_shutdown_{0};
  mutable std::atomic<std::uint64_t> completed_{0};
  mutable std::atomic<std::uint64_t> failed_{0};
  mutable std::atomic<std::uint64_t> resource_exhausted_{0};
  mutable std::atomic<std::uint64_t> rejected_cost_{0};
  mutable std::atomic<std::uint64_t> degraded_brownout_{0};
  mutable std::atomic<std::uint64_t> stats_requests_{0};
  mutable std::atomic<std::uint64_t> reload_requests_{0};
  mutable std::atomic<std::uint64_t> reloads_ok_{0};

  mutable std::mutex cost_mu_;  // guards cost_estimators_
  mutable std::map<const storage::DatabaseData*,
                   std::shared_ptr<analysis::CostEstimator>>
      cost_estimators_;
};

}  // namespace gred::serve

#endif  // GREDVIS_SERVE_SERVER_H_
