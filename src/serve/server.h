#ifndef GREDVIS_SERVE_SERVER_H_
#define GREDVIS_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "dataset/benchmark.h"
#include "gred/gred.h"
#include "serve/protocol.h"
#include "util/thread_pool.h"

namespace gred::serve {

/// Invoked exactly once per submitted request with the finished
/// response line (no trailing newline). Called from a worker thread for
/// queued work, or inline from Submit for rejections, parse errors and
/// stats requests.
using ResponseCallback = std::function<void(const std::string&)>;

/// One admitted unit of work: a validated translate request plus its
/// completion callback.
struct Job {
  Request request;
  ResponseCallback done;
};

/// A bounded MPMC queue — the server's admission control. TryPush
/// refuses (returns false) when the queue is at capacity or closed, so
/// overload sheds immediately instead of growing an unbounded backlog;
/// Pop blocks until work arrives or the queue is closed *and* drained,
/// which is what makes shutdown clean: close, then let workers finish
/// everything already admitted.
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admits `job` unless the queue is full or closed (in which case
  /// `job` is left untouched — the caller still owns it). Thread-safe.
  bool TryPush(Job&& job);
  /// Blocks for the next job; returns false when closed and empty.
  bool Pop(Job* out);
  /// No further admissions; Pop drains the backlog then returns false.
  void Close();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<Job> queue_;
  bool closed_ = false;
};

/// Per-stream connection state: serializes response lines onto one
/// output stream (workers finish in completion order, so concurrent
/// writes must not interleave) and counts what flowed through.
class Session {
 public:
  explicit Session(std::ostream* out) : out_(out) {}

  /// Writes one response line (appends '\n' and flushes). Thread-safe.
  void Write(const std::string& response_line);

  std::uint64_t responses_written() const {
    return responses_.load(std::memory_order_relaxed);
  }

 private:
  std::ostream* out_;  // not owned
  std::mutex mu_;
  std::atomic<std::uint64_t> responses_{0};
};

/// Server configuration.
struct ServerOptions {
  /// Worker threads draining the request queue. 0 = HardwareThreads().
  std::size_t num_workers = 0;
  /// Admission-control bound: requests beyond this backlog are rejected
  /// with {"error":"overloaded"} instead of queued.
  std::size_t queue_capacity = 64;
  /// Stamp per-stage timings (µs) into responses. Off = responses are
  /// byte-deterministic, which the replay-identity bench and tests use.
  bool include_timings = true;
  /// SLO applied to requests that carry no deadline_ms / budget_rows of
  /// their own (field-by-field: a request overrides only what it sets).
  GuardLimits default_limits;
};

/// Monotonic counters for the stats endpoint (snapshot; consistent
/// enough for dashboards, not a barrier).
struct ServerStats {
  std::uint64_t received = 0;           // lines submitted
  std::uint64_t rejected_overload = 0;  // shed by admission control
  std::uint64_t rejected_invalid = 0;   // parse/validation failures
  std::uint64_t completed = 0;          // translate responses, ok=true
  std::uint64_t failed = 0;             // translate responses, ok=false
  std::uint64_t resource_exhausted = 0; // subset of failed: budget trips
  std::uint64_t stats_requests = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t workers = 0;
};

/// The long-lived serving loop (DESIGN.md §13): newline-delimited JSON
/// requests in, JSON responses out, a bounded worker pool over the
/// shared ThreadPool, and one shared Gred instance so every session
/// hits the same CachingEmbedder and annotation caches.
///
/// Request flow: Submit parses and validates on the caller's thread
/// (cheap, and rejections must not consume queue slots), answers stats
/// requests inline, and admits translate work through the bounded
/// RequestQueue — full queue means an immediate overload rejection.
/// Workers pop, translate under the shared Gred, execute the DVQ under
/// the request's own ExecContext (deadline_ms/budget_rows — PR 4's
/// guards as the SLO layer), and complete the callback. Execution runs
/// on the default executor engine — the vectorized columnar one, which
/// charges guards per chunk with trip points identical to the
/// row-at-a-time reference (set GRED_EXEC_ENGINE=row to serve on the
/// reference engine when chasing an executor divergence).
///
/// Determinism: with include_timings=false, concurrent responses are
/// byte-identical to a serial Handle() replay of the same requests
/// (asserted by serve_test and the serve_sweep bench).
class Server {
 public:
  /// `suite` resolves database names; `gred` is the shared translation
  /// pipeline. Both are borrowed and must outlive the server.
  Server(const dataset::BenchmarkSuite* suite, const core::Gred* gred,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Asynchronous entry point: admission control now, completion later
  /// (or immediately for rejections/stats). `done` runs exactly once.
  void Submit(const std::string& line, ResponseCallback done);

  /// Synchronous reference path: processes one request line to its
  /// response on the calling thread, bypassing the queue. This is the
  /// single-threaded batch baseline the concurrent path is checked
  /// against (it shares all per-request code with the workers).
  std::string Handle(const std::string& line) const;

  /// Runs the blocking serve loop: one request per input line, one
  /// response per request on `out` in completion order. Returns after
  /// EOF once every admitted request has been answered. Empty lines are
  /// ignored (convenient for hand-typed sessions and trace files).
  int ServeStream(std::istream& in, std::ostream& out);

  /// Closes the queue, drains admitted work, joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  ServerStats stats() const;

  const ServerOptions& options() const { return options_; }

 private:
  /// Executes one validated translate request (workers + Handle share
  /// this; determinism of the serve layer = determinism of this
  /// function given a request).
  std::string Process(const Request& request) const;
  /// Renders the stats response for the dashboard endpoint.
  std::string StatsResponse(const Request& request) const;

  const dataset::BenchmarkSuite* suite_;  // not owned
  const core::Gred* gred_;                // not owned
  ServerOptions options_;
  RequestQueue queue_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> workers_;
  bool shut_down_ = false;
  std::mutex shutdown_mu_;

  mutable std::atomic<std::uint64_t> received_{0};
  mutable std::atomic<std::uint64_t> rejected_overload_{0};
  mutable std::atomic<std::uint64_t> rejected_invalid_{0};
  mutable std::atomic<std::uint64_t> completed_{0};
  mutable std::atomic<std::uint64_t> failed_{0};
  mutable std::atomic<std::uint64_t> resource_exhausted_{0};
  mutable std::atomic<std::uint64_t> stats_requests_{0};
};

}  // namespace gred::serve

#endif  // GREDVIS_SERVE_SERVER_H_
