#include "serve/protocol.h"

#include <cmath>

namespace gred::serve {

namespace {

/// Reads an optional non-negative integer field (deadline_ms,
/// budget_rows). Absent -> 0 (meaning "server default"); present but
/// not a non-negative finite number -> error.
Result<std::uint64_t> ReadBudgetField(const json::Value& obj,
                                      const char* key) {
  const json::Value* field = obj.Find(key);
  if (field == nullptr || field->is_null()) return std::uint64_t{0};
  if (field->kind() != json::Value::Kind::kNumber) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a number");
  }
  double d = field->number_value();
  if (!std::isfinite(d) || d < 0 || d > 9.2e18) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' out of range");
  }
  return static_cast<std::uint64_t>(d);
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  if (line.size() > kMaxRequestBytes) {
    return Status::InvalidArgument("request too large");
  }
  json::ParseResult parsed = json::Parse(line);
  if (!parsed.ok()) {
    return Status::ParseError(parsed.error());
  }
  const json::Value& obj = parsed.value();
  if (obj.kind() != json::Value::Kind::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  Request req;
  if (const json::Value* id = obj.Find("id")) req.id = *id;

  std::string type = "translate";
  if (const json::Value* t = obj.Find("type")) {
    if (t->kind() != json::Value::Kind::kString) {
      return Status::InvalidArgument("'type' must be a string");
    }
    type = t->string_value();
  }
  if (type == "stats") {
    req.type = RequestType::kStats;
    return req;
  }
  if (type == "reload") {
    req.type = RequestType::kReload;
    return req;
  }
  if (type != "translate") {
    return Status::InvalidArgument("unknown request type '" + type + "'");
  }

  const json::Value* nlq = obj.Find("nlq");
  if (nlq == nullptr || nlq->kind() != json::Value::Kind::kString ||
      nlq->string_value().empty()) {
    return Status::InvalidArgument("'nlq' must be a non-empty string");
  }
  req.nlq = nlq->string_value();

  const json::Value* db = obj.Find("db");
  if (db == nullptr) db = obj.Find("schema");  // wire alias
  if (db == nullptr || db->kind() != json::Value::Kind::kString ||
      db->string_value().empty()) {
    return Status::InvalidArgument(
        "'db' (or 'schema') must be a non-empty string");
  }
  req.db = db->string_value();

  GRED_ASSIGN_OR_RETURN(std::uint64_t deadline_ms,
                        ReadBudgetField(obj, "deadline_ms"));
  GRED_ASSIGN_OR_RETURN(req.limits.row_budget,
                        ReadBudgetField(obj, "budget_rows"));
  // Saturate rather than overflow on absurd deadlines.
  req.limits.deadline_ticks =
      deadline_ms > (~std::uint64_t{0}) / kAccountedTicksPerMs
          ? ~std::uint64_t{0}
          : deadline_ms * kAccountedTicksPerMs;

  if (const json::Value* session = obj.Find("session")) {
    if (session->kind() != json::Value::Kind::kString) {
      return Status::InvalidArgument("'session' must be a string");
    }
    req.session = session->string_value();
  }

  if (const json::Value* chart = obj.Find("chart")) {
    if (chart->kind() != json::Value::Kind::kBool) {
      return Status::InvalidArgument("'chart' must be a boolean");
    }
    req.want_chart = chart->bool_value();
  }
  return req;
}

std::string ErrorResponse(const json::Value* id, const Status& status) {
  json::Value out = json::Value::Object();
  if (id != nullptr && !id->is_null()) out.Set("id", *id);
  out.Set("ok", json::Value::Bool(false));
  out.Set("error", json::Value::Str(status.message()));
  out.Set("code", json::Value::Str(StatusCodeToString(status.code())));
  return out.Dump();
}

std::string OverloadedResponse(const json::Value* id) {
  return ErrorResponse(id, Status::Unavailable("overloaded"));
}

std::string RateLimitedResponse(const json::Value* id) {
  return ErrorResponse(id, Status::Unavailable("rate_limited"));
}

std::string ShuttingDownResponse(const json::Value* id) {
  return ErrorResponse(id, Status::Unavailable("shutting_down"));
}

}  // namespace gred::serve
