#include "serve/server.h"

#include <chrono>
#include <utility>

#include "dvq/sql.h"
#include "util/strings.h"
#include "viz/chart.h"

namespace gred::serve {

// ---------------------------------------------------------------------------
// RequestQueue

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool RequestQueue::TryPush(Job&& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(job));
  }
  ready_.notify_one();
  return true;
}

bool RequestQueue::Pop(Job* out) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

// ---------------------------------------------------------------------------
// Session

void Session::Write(const std::string& response_line) {
  std::lock_guard<std::mutex> lock(mu_);
  (*out_) << response_line << '\n';
  out_->flush();
  responses_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Server

namespace {

/// Request limits override the server defaults field by field (a
/// request that only sets budget_rows still inherits the default
/// deadline).
GuardLimits MergeLimits(const GuardLimits& request,
                        const GuardLimits& defaults) {
  GuardLimits merged = request;
  if (merged.deadline_ticks == 0) merged.deadline_ticks = defaults.deadline_ticks;
  if (merged.row_budget == 0) merged.row_budget = defaults.row_budget;
  if (merged.memory_budget == 0) merged.memory_budget = defaults.memory_budget;
  if (merged.join_budget == 0) merged.join_budget = defaults.join_budget;
  return merged;
}

std::int64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Server::Server(const dataset::BenchmarkSuite* suite, const core::Gred* gred,
               ServerOptions options)
    : suite_(suite),
      gred_(gred),
      options_(options),
      queue_(options.queue_capacity) {
  if (options_.num_workers == 0) options_.num_workers = HardwareThreads();
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(pool_->Submit([this] {
      Job job;
      while (queue_.Pop(&job)) job.done(Process(job.request));
    }));
  }
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.Close();
  for (std::future<void>& worker : workers_) worker.get();
  workers_.clear();
}

void Server::Submit(const std::string& line, ResponseCallback done) {
  received_.fetch_add(1, std::memory_order_relaxed);
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    // Never queued: malformed bytes cost one parse, not a worker slot.
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    done(ErrorResponse(nullptr, parsed.status()));
    return;
  }
  Request& request = parsed.value();
  if (request.type == RequestType::kStats) {
    // The dashboard endpoint answers inline: it reads counters and
    // caches, does no translation work, and must respond even (indeed
    // especially) when the queue is saturated.
    stats_requests_.fetch_add(1, std::memory_order_relaxed);
    done(StatsResponse(request));
    return;
  }
  Job job{std::move(request), std::move(done)};
  if (!queue_.TryPush(std::move(job))) {
    // Admission control: reject-on-full is the backpressure contract —
    // a bounded backlog, never an unbounded one.
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    job.done(OverloadedResponse(&job.request.id));
  }
}

std::string Server::Handle(const std::string& line) const {
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) return ErrorResponse(nullptr, parsed.status());
  if (parsed.value().type == RequestType::kStats) {
    return StatsResponse(parsed.value());
  }
  return Process(parsed.value());
}

int Server::ServeStream(std::istream& in, std::ostream& out) {
  Session session(&out);
  std::string line;
  while (std::getline(in, line)) {
    if (strings::Trim(line).empty()) continue;
    Submit(line,
           [&session](const std::string& response) { session.Write(response); });
  }
  // EOF: drain everything admitted, then return. Every submitted line
  // has exactly one response on `out` by the time this returns.
  Shutdown();
  return 0;
}

std::string Server::Process(const Request& request) const {
  const bool timed = options_.include_timings;
  const auto start = std::chrono::steady_clock::now();

  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(request.db);
  if (db == nullptr) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(&request.id,
                         Status::NotFound("unknown database '" + request.db +
                                          "'"));
  }

  // Translation runs on the shared Gred (shared CachingEmbedder +
  // annotation caches across all sessions); the per-call trace carries
  // this request's own degradation flags.
  core::Gred::Trace trace;
  const auto translate_start = std::chrono::steady_clock::now();
  Result<dvq::DVQ> dvq =
      gred_->TranslateWithTrace(request.nlq, db->data, &trace);
  const std::int64_t translate_us =
      timed ? ElapsedMicros(translate_start) : 0;
  if (!dvq.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (dvq.status().IsResourceExhausted()) {
      resource_exhausted_.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorResponse(&request.id, dvq.status());
  }

  json::Value out = json::Value::Object();
  if (!request.id.is_null()) out.Set("id", request.id);

  // The request's SLO: deadline_ms/budget_rows arm a fresh ExecContext
  // for the data path (PR 4's guards — deterministic accounted ticks,
  // so a trip lands at the same row on every replay).
  GuardLimits limits = MergeLimits(request.limits, options_.default_limits);
  ExecContext guard(limits);
  const auto execute_start = std::chrono::steady_clock::now();
  Result<viz::Chart> chart =
      viz::BuildChart(dvq.value(), db->data, &guard);
  const std::int64_t execute_us = timed ? ElapsedMicros(execute_start) : 0;

  out.Set("ok", json::Value::Bool(chart.ok()));
  out.Set("dvq", json::Value::Str(dvq.value().ToString()));
  out.Set("sql", json::Value::Str(dvq::ToSql(dvq.value())));
  json::Value degraded = json::Value::Object();
  degraded.Set("retuner", json::Value::Bool(trace.rtn_degraded));
  degraded.Set("debugger", json::Value::Bool(trace.dbg_degraded));
  out.Set("degraded", std::move(degraded));

  if (chart.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    out.Set("rows", json::Value::Int(
                        static_cast<std::int64_t>(chart.value().data.num_rows())));
    if (request.want_chart) out.Set("chart", viz::ToVegaLite(chart.value()));
  } else {
    // Translation produced a valid DVQ but the data path failed — a
    // budget trip (the SLO fired) or the paper's "no chart shown"
    // failure mode. The DVQ/SQL stay in the response: the client can
    // retry with a bigger budget without re-translating.
    const Status& status = chart.status();
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (status.IsResourceExhausted() ||
        status.code() == StatusCode::kCancelled) {
      resource_exhausted_.fetch_add(1, std::memory_order_relaxed);
      out.Set("resource_exhausted", json::Value::Bool(true));
    }
    out.Set("error", json::Value::Str(status.message()));
    out.Set("code", json::Value::Str(StatusCodeToString(status.code())));
  }

  if (timed) {
    json::Value timings = json::Value::Object();
    timings.Set("translate_us", json::Value::Int(translate_us));
    timings.Set("execute_us", json::Value::Int(execute_us));
    timings.Set("total_us", json::Value::Int(ElapsedMicros(start)));
    out.Set("timings_us", std::move(timings));
  }
  return out.Dump();
}

std::string Server::StatsResponse(const Request& request) const {
  json::Value out = json::Value::Object();
  if (!request.id.is_null()) out.Set("id", request.id);
  out.Set("ok", json::Value::Bool(true));

  ServerStats snapshot = stats();
  json::Value server = json::Value::Object();
  server.Set("received", json::Value::Int(
                             static_cast<std::int64_t>(snapshot.received)));
  server.Set("completed", json::Value::Int(
                              static_cast<std::int64_t>(snapshot.completed)));
  server.Set("failed",
             json::Value::Int(static_cast<std::int64_t>(snapshot.failed)));
  server.Set("rejected_overload",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.rejected_overload)));
  server.Set("rejected_invalid",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.rejected_invalid)));
  server.Set("resource_exhausted",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.resource_exhausted)));
  server.Set("queue_depth", json::Value::Int(static_cast<std::int64_t>(
                                snapshot.queue_depth)));
  server.Set("queue_capacity", json::Value::Int(static_cast<std::int64_t>(
                                   snapshot.queue_capacity)));
  server.Set("workers",
             json::Value::Int(static_cast<std::int64_t>(snapshot.workers)));
  out.Set("server", std::move(server));

  embed::CachingEmbedder::Stats cache = gred_->embed_cache_stats();
  json::Value embed_cache = json::Value::Object();
  embed_cache.Set("hits",
                  json::Value::Int(static_cast<std::int64_t>(cache.hits)));
  embed_cache.Set("misses",
                  json::Value::Int(static_cast<std::int64_t>(cache.misses)));
  double lookups = static_cast<double>(cache.hits + cache.misses);
  embed_cache.Set("hit_rate",
                  json::Value::Number(
                      lookups > 0 ? static_cast<double>(cache.hits) / lookups
                                  : 0.0));
  out.Set("embed_cache", std::move(embed_cache));

  core::Gred::StageStats stages = gred_->stage_stats();
  json::Value stage = json::Value::Object();
  stage.Set("translate_calls",
            json::Value::Int(
                static_cast<std::int64_t>(stages.translate_calls)));
  stage.Set("retune_degraded",
            json::Value::Int(
                static_cast<std::int64_t>(stages.retune_degraded)));
  stage.Set("debug_degraded",
            json::Value::Int(
                static_cast<std::int64_t>(stages.debug_degraded)));
  stage.Set("retune_budget_trips",
            json::Value::Int(
                static_cast<std::int64_t>(stages.retune_budget_trips)));
  stage.Set("debug_budget_trips",
            json::Value::Int(
                static_cast<std::int64_t>(stages.debug_budget_trips)));
  stage.Set("retune_lint_trips",
            json::Value::Int(
                static_cast<std::int64_t>(stages.retune_lint_trips)));
  stage.Set("debug_lint_trips",
            json::Value::Int(
                static_cast<std::int64_t>(stages.debug_lint_trips)));
  out.Set("stages", std::move(stage));
  return out.Dump();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.resource_exhausted = resource_exhausted_.load(std::memory_order_relaxed);
  s.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.depth();
  s.queue_capacity = queue_.capacity();
  s.workers = options_.num_workers;
  return s;
}

}  // namespace gred::serve
