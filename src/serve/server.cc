#include "serve/server.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "dvq/sql.h"
#include "util/strings.h"
#include "viz/chart.h"

namespace gred::serve {

// ---------------------------------------------------------------------------
// RequestQueue

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

RequestQueue::PushResult RequestQueue::TryPush(Job&& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (queue_.size() >= capacity_) return PushResult::kFull;
    queue_.push_back(std::move(job));
  }
  ready_.notify_one();
  return PushResult::kAccepted;
}

bool RequestQueue::Pop(Job* out) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

// ---------------------------------------------------------------------------
// SessionRateLimiter

SessionRateLimiter::SessionRateLimiter(double refill_per_request,
                                       double burst)
    // burst < 1 would deny every request forever; clamp so an armed
    // limiter always has a working bucket.
    : refill_(refill_per_request), burst_(burst < 1.0 ? 1.0 : burst) {}

bool SessionRateLimiter::Admit(const std::string& session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = buckets_.try_emplace(session);
  Bucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = burst_;  // new sessions start with their full burst
  } else {
    bucket.tokens = std::min(
        burst_, bucket.tokens + refill_ * static_cast<double>(
                                              ticks_ - bucket.last_tick));
  }
  bucket.last_tick = ticks_;
  if (bucket.tokens < 1.0) return false;  // rejected: clock does not move
  bucket.tokens -= 1.0;
  ++ticks_;
  return true;
}

std::uint64_t SessionRateLimiter::clock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

// ---------------------------------------------------------------------------
// Session

void Session::Write(const std::string& response_line) {
  std::lock_guard<std::mutex> lock(mu_);
  (*out_) << response_line << '\n';
  out_->flush();
  responses_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Server

namespace {

/// Request limits override the server defaults field by field (a
/// request that only sets budget_rows still inherits the default
/// deadline).
GuardLimits MergeLimits(const GuardLimits& request,
                        const GuardLimits& defaults) {
  GuardLimits merged = request;
  if (merged.deadline_ticks == 0) merged.deadline_ticks = defaults.deadline_ticks;
  if (merged.row_budget == 0) merged.row_budget = defaults.row_budget;
  if (merged.memory_budget == 0) merged.memory_budget = defaults.memory_budget;
  if (merged.join_budget == 0) merged.join_budget = defaults.join_budget;
  return merged;
}

/// Brownout caps: each non-zero cap field is a ceiling on the merged
/// limits (min of the two, where 0 means "unlimited" on either side).
GuardLimits TightenLimits(const GuardLimits& base, const GuardLimits& cap) {
  auto tighten = [](std::uint64_t b, std::uint64_t c) {
    if (c == 0) return b;
    if (b == 0) return c;
    return std::min(b, c);
  };
  GuardLimits out;
  out.deadline_ticks = tighten(base.deadline_ticks, cap.deadline_ticks);
  out.row_budget = tighten(base.row_budget, cap.row_budget);
  out.memory_budget = tighten(base.memory_budget, cap.memory_budget);
  out.join_budget = tighten(base.join_budget, cap.join_budget);
  return out;
}

std::int64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Wraps a borrowed pointer in a non-owning shared_ptr (epoch 1 borrows
/// the constructor arguments; reloads install owned snapshots).
template <typename T>
std::shared_ptr<const T> Borrow(const T* ptr) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>{}, ptr);
}

}  // namespace

Server::Server(const dataset::BenchmarkSuite* suite, const core::Gred* gred,
               ServerOptions options)
    : options_(options), queue_(options.queue_capacity) {
  if (options_.num_workers == 0) options_.num_workers = HardwareThreads();
  if (options_.brownout_low_watermark > options_.brownout_high_watermark) {
    options_.brownout_low_watermark = options_.brownout_high_watermark;
  }
  auto first = std::make_shared<ServingEpoch>();
  first->epoch = 1;
  first->suite = Borrow(suite);
  first->gred = Borrow(gred);
  epoch_ = std::move(first);
  if (options_.rate_refill_per_request > 0.0 && options_.rate_burst > 0.0) {
    limiter_ = std::make_unique<SessionRateLimiter>(
        options_.rate_refill_per_request, options_.rate_burst);
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(pool_->Submit([this] {
      Job job;
      while (queue_.Pop(&job)) job.done(Process(job.request, job.brownout));
    }));
  }
}

Server::~Server() { Shutdown(); }

void Server::BeginDrain() { queue_.Close(); }

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.Close();
  for (std::future<void>& worker : workers_) worker.get();
  workers_.clear();
  // The accounting invariant (ServerStats::Balanced, DESIGN.md §16):
  // with every worker joined, each received line must have resolved to
  // exactly one counted outcome. The chaos harness re-asserts this in
  // release builds; here it is a debug tripwire.
  assert(stats().Balanced() && "serve counters out of balance after drain");
}

std::shared_ptr<const ServingEpoch> Server::current_epoch() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

Result<std::uint64_t> Server::Reload() {
  if (!options_.reload_handler) {
    return Status::Unimplemented("no reload handler configured");
  }
  Result<EpochPayload> payload = options_.reload_handler();
  if (!payload.ok()) return payload.status();
  auto next = std::make_shared<ServingEpoch>();
  next->suite = std::move(payload.value().suite);
  next->gred = std::move(payload.value().gred);
  std::lock_guard<std::mutex> lock(epoch_mu_);
  next->epoch = epoch_->epoch + 1;
  epoch_ = std::move(next);
  reloads_ok_.fetch_add(1, std::memory_order_relaxed);
  return epoch_->epoch;
}

bool Server::DecideBrownout() {
  if (options_.brownout_high_watermark == 0) return false;
  std::lock_guard<std::mutex> lock(brownout_mu_);
  std::size_t depth = queue_.depth();
  if (!brownout_active_ && depth >= options_.brownout_high_watermark) {
    brownout_active_ = true;
  } else if (brownout_active_ &&
             depth <= options_.brownout_low_watermark) {
    brownout_active_ = false;
  }
  return brownout_active_;
}

void Server::Submit(const std::string& line, ResponseCallback done) {
  received_.fetch_add(1, std::memory_order_relaxed);
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    // Never queued: malformed bytes cost one parse, not a worker slot.
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    done(ErrorResponse(nullptr, parsed.status()));
    return;
  }
  Request& request = parsed.value();
  if (request.type == RequestType::kStats) {
    // The dashboard endpoint answers inline: it reads counters and
    // caches, does no translation work, and must respond even (indeed
    // especially) when the queue is saturated.
    stats_requests_.fetch_add(1, std::memory_order_relaxed);
    done(StatsResponse(request));
    return;
  }
  if (request.type == RequestType::kReload) {
    // Control plane, also inline: the submitting thread pays for the
    // new epoch's construction while workers keep draining the old one.
    done(ReloadResponse(request));
    return;
  }
  if (queue_.closed()) {
    // Draining: tell the client the truth — this is not transient
    // overload, retrying here is futile.
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    done(ShuttingDownResponse(&request.id));
    return;
  }
  if (limiter_ != nullptr && !limiter_->Admit(request.session)) {
    rejected_ratelimit_.fetch_add(1, std::memory_order_relaxed);
    done(RateLimitedResponse(&request.id));
    return;
  }
  const bool brownout = DecideBrownout();
  Job job{std::move(request), std::move(done), brownout};
  switch (queue_.TryPush(std::move(job))) {
    case RequestQueue::PushResult::kAccepted:
      if (brownout) {
        degraded_brownout_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    case RequestQueue::PushResult::kFull:
      // Admission control: reject-on-full is the backpressure contract
      // — a bounded backlog, never an unbounded one.
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      job.done(OverloadedResponse(&job.request.id));
      return;
    case RequestQueue::PushResult::kClosed:
      // Lost the race with Close(): same truth as the pre-check above.
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      job.done(ShuttingDownResponse(&job.request.id));
      return;
  }
}

std::string Server::Handle(const std::string& line) {
  // The serial reference path counts exactly like Submit so the
  // Balanced() invariant holds for mixed serial/concurrent workloads.
  received_.fetch_add(1, std::memory_order_relaxed);
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(nullptr, parsed.status());
  }
  if (parsed.value().type == RequestType::kStats) {
    stats_requests_.fetch_add(1, std::memory_order_relaxed);
    return StatsResponse(parsed.value());
  }
  if (parsed.value().type == RequestType::kReload) {
    return ReloadResponse(parsed.value());
  }
  return Process(parsed.value(), /*brownout=*/false);
}

int Server::ServeStream(std::istream& in, std::ostream& out,
                        const std::atomic<bool>* stop) {
  Session session(&out);
  std::string line;
  while ((stop == nullptr || !stop->load(std::memory_order_relaxed)) &&
         std::getline(in, line)) {
    if (strings::Trim(line).empty()) continue;
    Submit(line,
           [&session](const std::string& response) { session.Write(response); });
  }
  // EOF or stop: drain everything admitted, then return. Every
  // submitted line has exactly one response on `out` by the time this
  // returns. (A signal interrupting the blocking read lands here too:
  // the handler sets *stop and the failed read exits the loop.)
  Shutdown();
  return 0;
}

std::string Server::Process(const Request& request, bool brownout) const {
  const bool timed = options_.include_timings;
  const auto start = std::chrono::steady_clock::now();

  // Pin this request's serving epoch: a concurrent reload swaps the
  // server's epoch for *subsequent* requests, while this shared_ptr
  // keeps the suite + pipeline we resolve against alive to the end.
  const std::shared_ptr<const ServingEpoch> epoch = current_epoch();

  const dataset::GeneratedDatabase* db = epoch->suite->FindCleanDb(request.db);
  if (db == nullptr) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(&request.id,
                         Status::NotFound("unknown database '" + request.db +
                                          "'"));
  }

  // Translation runs on the epoch's shared Gred (shared CachingEmbedder
  // + annotation caches across all sessions); the per-call trace
  // carries this request's own degradation flags. Brownout admissions
  // shed the retuner/debugger stages — the quality slope that replaces
  // the reject cliff.
  core::Gred::TranslateOptions translate_options;
  translate_options.enable_retuner = !brownout;
  translate_options.enable_debugger = !brownout;
  core::Gred::Trace trace;
  const auto translate_start = std::chrono::steady_clock::now();
  Result<dvq::DVQ> dvq = epoch->gred->TranslateWithTrace(
      request.nlq, db->data, &trace, translate_options);
  const std::int64_t translate_us =
      timed ? ElapsedMicros(translate_start) : 0;
  if (!dvq.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (dvq.status().IsResourceExhausted()) {
      resource_exhausted_.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorResponse(&request.id, dvq.status());
  }

  json::Value out = json::Value::Object();
  if (!request.id.is_null()) out.Set("id", request.id);

  // The request's SLO: deadline_ms/budget_rows arm a fresh ExecContext
  // for the data path (PR 4's guards — deterministic accounted ticks,
  // so a trip lands at the same row on every replay). Brownout caps the
  // merged limits field by field.
  GuardLimits limits = MergeLimits(request.limits, options_.default_limits);
  if (brownout) limits = TightenLimits(limits, options_.brownout_limits);

  // Static admission pricing: the abstract cost estimate is an upper
  // bound on the executor's charges, so an estimate that exceeds the
  // effective limits proves the request would trip its guard — reject
  // it typed and instantly instead of burning a worker until the trip.
  // Estimator errors fail open (unresolvable names, etc.: let the
  // executor produce its own, better diagnostic).
  if (options_.cost_gate && !limits.Unlimited()) {
    const std::shared_ptr<analysis::CostEstimator> estimator =
        CostEstimatorFor(&db->data);
    Result<analysis::CostEstimate> estimate =
        estimator->Estimate(dvq.value());
    if (estimate.ok() && estimate.value().Exceeds(limits)) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      rejected_cost_.fetch_add(1, std::memory_order_relaxed);
      out.Set("ok", json::Value::Bool(false));
      out.Set("dvq", json::Value::Str(dvq.value().ToString()));
      out.Set("sql", json::Value::Str(dvq::ToSql(dvq.value())));
      json::Value degraded = json::Value::Object();
      degraded.Set("retuner", json::Value::Bool(trace.rtn_degraded));
      degraded.Set("debugger", json::Value::Bool(trace.dbg_degraded));
      if (brownout) degraded.Set("brownout", json::Value::Bool(true));
      out.Set("degraded", std::move(degraded));
      out.Set("cost_exceeded", json::Value::Bool(true));
      const analysis::CostEstimate& cost = estimate.value();
      json::Value priced = json::Value::Object();
      priced.Set("ticks", json::Value::Int(
                              static_cast<std::int64_t>(std::min<std::uint64_t>(
                                  cost.ticks, INT64_MAX))));
      priced.Set("rows", json::Value::Int(
                             static_cast<std::int64_t>(std::min<std::uint64_t>(
                                 cost.rows, INT64_MAX))));
      priced.Set("bytes", json::Value::Int(
                              static_cast<std::int64_t>(std::min<std::uint64_t>(
                                  cost.bytes, INT64_MAX))));
      priced.Set("join_rows",
                 json::Value::Int(static_cast<std::int64_t>(
                     std::min<std::uint64_t>(cost.join_rows, INT64_MAX))));
      priced.Set("exceeded",
                 json::Value::Str(cost.ExceededBudget(limits)));
      out.Set("cost", std::move(priced));
      out.Set("error", json::Value::Str("cost_exceeded"));
      if (timed) {
        json::Value timings = json::Value::Object();
        timings.Set("translate_us", json::Value::Int(translate_us));
        timings.Set("execute_us", json::Value::Int(0));
        timings.Set("total_us", json::Value::Int(ElapsedMicros(start)));
        out.Set("timings_us", std::move(timings));
      }
      return out.Dump();
    }
  }

  ExecContext guard(limits);
  const auto execute_start = std::chrono::steady_clock::now();
  Result<viz::Chart> chart =
      viz::BuildChart(dvq.value(), db->data, &guard);
  const std::int64_t execute_us = timed ? ElapsedMicros(execute_start) : 0;

  out.Set("ok", json::Value::Bool(chart.ok()));
  out.Set("dvq", json::Value::Str(dvq.value().ToString()));
  out.Set("sql", json::Value::Str(dvq::ToSql(dvq.value())));
  json::Value degraded = json::Value::Object();
  degraded.Set("retuner", json::Value::Bool(trace.rtn_degraded));
  degraded.Set("debugger", json::Value::Bool(trace.dbg_degraded));
  // Typed brownout marker: present (and true) exactly when this request
  // was admitted in degraded mode, so knobs-off responses stay
  // byte-identical to the pre-brownout wire format.
  if (brownout) degraded.Set("brownout", json::Value::Bool(true));
  out.Set("degraded", std::move(degraded));

  if (chart.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    out.Set("rows", json::Value::Int(
                        static_cast<std::int64_t>(chart.value().data.num_rows())));
    if (request.want_chart) out.Set("chart", viz::ToVegaLite(chart.value()));
  } else {
    // Translation produced a valid DVQ but the data path failed — a
    // budget trip (the SLO fired) or the paper's "no chart shown"
    // failure mode. The DVQ/SQL stay in the response: the client can
    // retry with a bigger budget without re-translating.
    const Status& status = chart.status();
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (status.IsResourceExhausted() ||
        status.code() == StatusCode::kCancelled) {
      resource_exhausted_.fetch_add(1, std::memory_order_relaxed);
      out.Set("resource_exhausted", json::Value::Bool(true));
    }
    out.Set("error", json::Value::Str(status.message()));
    out.Set("code", json::Value::Str(StatusCodeToString(status.code())));
  }

  if (timed) {
    json::Value timings = json::Value::Object();
    timings.Set("translate_us", json::Value::Int(translate_us));
    timings.Set("execute_us", json::Value::Int(execute_us));
    timings.Set("total_us", json::Value::Int(ElapsedMicros(start)));
    out.Set("timings_us", std::move(timings));
  }
  return out.Dump();
}

std::shared_ptr<analysis::CostEstimator> Server::CostEstimatorFor(
    const storage::DatabaseData* data) const {
  std::lock_guard<std::mutex> lock(cost_mu_);
  std::shared_ptr<analysis::CostEstimator>& slot = cost_estimators_[data];
  if (slot == nullptr) slot = std::make_shared<analysis::CostEstimator>(data);
  return slot;
}

std::string Server::ReloadResponse(const Request& request) {
  reload_requests_.fetch_add(1, std::memory_order_relaxed);
  Result<std::uint64_t> epoch = Reload();
  if (!epoch.ok()) return ErrorResponse(&request.id, epoch.status());
  json::Value out = json::Value::Object();
  if (!request.id.is_null()) out.Set("id", request.id);
  out.Set("ok", json::Value::Bool(true));
  out.Set("epoch",
          json::Value::Int(static_cast<std::int64_t>(epoch.value())));
  return out.Dump();
}

std::string Server::StatsResponse(const Request& request) const {
  json::Value out = json::Value::Object();
  if (!request.id.is_null()) out.Set("id", request.id);
  out.Set("ok", json::Value::Bool(true));

  ServerStats snapshot = stats();
  json::Value server = json::Value::Object();
  server.Set("received", json::Value::Int(
                             static_cast<std::int64_t>(snapshot.received)));
  server.Set("completed", json::Value::Int(
                              static_cast<std::int64_t>(snapshot.completed)));
  server.Set("failed",
             json::Value::Int(static_cast<std::int64_t>(snapshot.failed)));
  server.Set("rejected_overload",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.rejected_overload)));
  server.Set("rejected_invalid",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.rejected_invalid)));
  server.Set("rejected_ratelimit",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.rejected_ratelimit)));
  server.Set("rejected_shutdown",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.rejected_shutdown)));
  server.Set("resource_exhausted",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.resource_exhausted)));
  server.Set("rejected_cost",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.rejected_cost)));
  server.Set("degraded_brownout",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.degraded_brownout)));
  server.Set("brownout_active",
             json::Value::Bool(snapshot.brownout_active));
  server.Set("reload_requests",
             json::Value::Int(
                 static_cast<std::int64_t>(snapshot.reload_requests)));
  server.Set("reloads_ok", json::Value::Int(
                               static_cast<std::int64_t>(snapshot.reloads_ok)));
  server.Set("epoch",
             json::Value::Int(static_cast<std::int64_t>(snapshot.epoch)));
  server.Set("queue_depth", json::Value::Int(static_cast<std::int64_t>(
                                snapshot.queue_depth)));
  server.Set("queue_capacity", json::Value::Int(static_cast<std::int64_t>(
                                   snapshot.queue_capacity)));
  server.Set("workers",
             json::Value::Int(static_cast<std::int64_t>(snapshot.workers)));
  out.Set("server", std::move(server));

  const std::shared_ptr<const ServingEpoch> epoch = current_epoch();
  embed::CachingEmbedder::Stats cache = epoch->gred->embed_cache_stats();
  json::Value embed_cache = json::Value::Object();
  embed_cache.Set("hits",
                  json::Value::Int(static_cast<std::int64_t>(cache.hits)));
  embed_cache.Set("misses",
                  json::Value::Int(static_cast<std::int64_t>(cache.misses)));
  double lookups = static_cast<double>(cache.hits + cache.misses);
  embed_cache.Set("hit_rate",
                  json::Value::Number(
                      lookups > 0 ? static_cast<double>(cache.hits) / lookups
                                  : 0.0));
  out.Set("embed_cache", std::move(embed_cache));

  core::Gred::StageStats stages = epoch->gred->stage_stats();
  json::Value stage = json::Value::Object();
  stage.Set("translate_calls",
            json::Value::Int(
                static_cast<std::int64_t>(stages.translate_calls)));
  stage.Set("retune_degraded",
            json::Value::Int(
                static_cast<std::int64_t>(stages.retune_degraded)));
  stage.Set("debug_degraded",
            json::Value::Int(
                static_cast<std::int64_t>(stages.debug_degraded)));
  stage.Set("retune_budget_trips",
            json::Value::Int(
                static_cast<std::int64_t>(stages.retune_budget_trips)));
  stage.Set("debug_budget_trips",
            json::Value::Int(
                static_cast<std::int64_t>(stages.debug_budget_trips)));
  stage.Set("retune_lint_trips",
            json::Value::Int(
                static_cast<std::int64_t>(stages.retune_lint_trips)));
  stage.Set("debug_lint_trips",
            json::Value::Int(
                static_cast<std::int64_t>(stages.debug_lint_trips)));
  stage.Set("retune_repairs",
            json::Value::Int(
                static_cast<std::int64_t>(stages.retune_repairs)));
  stage.Set("debug_repairs",
            json::Value::Int(
                static_cast<std::int64_t>(stages.debug_repairs)));
  out.Set("stages", std::move(stage));

  if (options_.breaker != nullptr) {
    llm::CircuitBreakerChatModel::Stats breaker = options_.breaker->stats();
    json::Value circuit = json::Value::Object();
    const char* state = "closed";
    switch (options_.breaker->state()) {
      case llm::CircuitBreakerChatModel::State::kClosed: state = "closed"; break;
      case llm::CircuitBreakerChatModel::State::kOpen: state = "open"; break;
      case llm::CircuitBreakerChatModel::State::kHalfOpen:
        state = "half-open";
        break;
    }
    circuit.Set("state", json::Value::Str(state));
    circuit.Set("calls",
                json::Value::Int(static_cast<std::int64_t>(breaker.calls)));
    circuit.Set("admitted",
                json::Value::Int(static_cast<std::int64_t>(breaker.admitted)));
    circuit.Set("fast_failures",
                json::Value::Int(
                    static_cast<std::int64_t>(breaker.fast_failures)));
    circuit.Set("probes",
                json::Value::Int(static_cast<std::int64_t>(breaker.probes)));
    circuit.Set("trips",
                json::Value::Int(static_cast<std::int64_t>(breaker.trips)));
    circuit.Set("resets",
                json::Value::Int(static_cast<std::int64_t>(breaker.resets)));
    out.Set("breaker", std::move(circuit));
  }
  return out.Dump();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_ratelimit = rejected_ratelimit_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.resource_exhausted = resource_exhausted_.load(std::memory_order_relaxed);
  s.rejected_cost = rejected_cost_.load(std::memory_order_relaxed);
  s.degraded_brownout = degraded_brownout_.load(std::memory_order_relaxed);
  s.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  s.reload_requests = reload_requests_.load(std::memory_order_relaxed);
  s.reloads_ok = reloads_ok_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    s.epoch = epoch_->epoch;
  }
  s.queue_depth = queue_.depth();
  s.queue_capacity = queue_.capacity();
  s.workers = options_.num_workers;
  {
    std::lock_guard<std::mutex> lock(brownout_mu_);
    s.brownout_active = brownout_active_;
  }
  return s;
}

}  // namespace gred::serve
