#ifndef GREDVIS_GRED_GRED_H_
#define GREDVIS_GRED_GRED_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "embed/caching_embedder.h"
#include "embed/embedder.h"
#include "llm/chat_model.h"
#include "models/model.h"
#include "models/retrieval.h"
#include "util/resource_guard.h"
#include "util/timing.h"

namespace gred::core {

/// Configuration of the GRED pipeline (Section 4).
struct GredConfig {
  /// Retrieval depth for both the NLQ and DVQ libraries (paper: K=10).
  std::size_t k = 10;
  /// Stage switches for the Table 4 ablations.
  bool enable_retuner = true;    // w/o RTN when false
  bool enable_debugger = true;   // w/o DBG when false
  /// Annotation-grounding ablation: when false the Debugger prompt ships
  /// the bare schema with no NL annotations, so hallucinated names can
  /// only be repaired by name similarity (Section 4.2 argues the
  /// annotations are what make the repair reliable).
  bool debugger_uses_annotations = true;
  /// Prompt example order: true = ascending similarity (most similar
  /// example adjacent to the question; the paper's choice), false =
  /// descending (ablation).
  bool ascending_prompt_order = true;
  /// Optional display-name suffix (" w/o RTN", ...).
  std::string name_suffix;
  /// Per-stage resource limits (util/resource_guard.h) applied when a
  /// stage's completion is validated: lex + parse work is charged in
  /// accounted ticks (one per token), so an oversized or pathologically
  /// nested LLM completion trips the budget deterministically. A tripped
  /// retuner/debugger stage degrades to the previous stage's DVQ exactly
  /// like an LLM failure (DESIGN.md §8); a tripped generator — which has
  /// no fallback — surfaces kResourceExhausted. Default: unlimited.
  GuardLimits stage_limits;
  /// Static analysis gate (DESIGN.md §12). When true, every retuner and
  /// debugger candidate DVQ is linted against the target database schema
  /// (analysis::DvqAnalyzer); a candidate carrying an error-level
  /// diagnostic is rejected exactly like a budget trip — the previous
  /// stage's DVQ carries forward — and the current DVQ's diagnostics are
  /// fed into the debugger prompt as structured repair evidence. Default
  /// off: the stock pipeline (and its outputs) stay byte-identical.
  bool enable_lint = false;
  /// Static repair gate (DESIGN.md §17), meaningful only with
  /// enable_lint. When true, a lint-rejected retuner/debugger candidate
  /// gets one deterministic repair attempt (analysis::DvqRepairer)
  /// before degradation: if the repairer converges to an error-free DVQ
  /// the repaired candidate is accepted (no degradation, no lint trip),
  /// otherwise the stage degrades as before. Default off: the lint-only
  /// pipeline stays byte-identical.
  bool enable_repair = false;
};

/// Generates the natural-language annotation text for one database by
/// prompting `llm` with the Appendix C.1 prompt (preparation phase uses
/// zero penalties, per Section 5.1).
Result<std::string> GenerateAnnotations(const schema::Database& db,
                                        const llm::ChatModel& llm);

/// The GRED framework: NLQ-Retrieval Generator -> DVQ-Retrieval Retuner
/// -> Annotation-based Debugger, all through LLM prompts (Appendix C).
class Gred : public models::TextToVisModel {
 public:
  /// `corpus` supplies the embedding libraries (training split) and the
  /// clean databases whose schemas accompany in-context examples.
  /// `llm` is the chat model (not owned).
  Gred(const models::TrainingCorpus& corpus, const llm::ChatModel* llm,
       GredConfig config = {});

  std::string name() const override { return "GRED" + config_.name_suffix; }

  /// Thread-safe: concurrent Translate calls share the annotation cache
  /// (mutex-guarded) and the immutable embedding libraries built in the
  /// constructor. `last_trace()` reflects whichever call finished last.
  ///
  /// Fault tolerance: a retuner or debugger failure (LLM error after any
  /// retries, or a completion with no extractable DVQ) degrades the call
  /// — the previous stage's DVQ carries forward and the trace marks the
  /// stage degraded — instead of failing it. Only a generator failure,
  /// which leaves nothing to fall back to, returns an error.
  Result<dvq::DVQ> Translate(const std::string& nlq,
                             const storage::DatabaseData& db) const override;

  /// Preparatory phase, step 2 (Section 4.1): generates and caches the
  /// NL annotations for every given database up front, so Translate
  /// never pays annotation latency. Returns the number of databases
  /// successfully annotated (cache hits included); failures — possible
  /// only with a fault-injecting LLM — are cached too (so the outcome is
  /// decided once, deterministically) and excluded from the count.
  Result<std::size_t> PrepareAnnotations(
      const std::vector<dataset::GeneratedDatabase>& databases) const;

  /// Intermediate artifacts of the last Translate call (for the case
  /// study and tests): generator output, retuner output, debugger output.
  /// A stage that ran but produced nothing usable (LLM failure after
  /// retries, or a completion with no extractable DVQ) leaves its dvq_*
  /// field empty and sets its degraded flag; the pipeline falls back to
  /// the previous stage's DVQ. The generator has no fallback, so it has
  /// no degraded flag — its failures fail Translate.
  struct Trace {
    std::string dvq_gen;
    std::string dvq_rtn;
    std::string dvq_dbg;
    bool rtn_degraded = false;
    bool dbg_degraded = false;
    /// Subset of the degradations above where the stage's candidate DVQ
    /// parsed fine but the static analyzer found an error-level
    /// diagnostic (GredConfig::enable_lint).
    bool rtn_lint_rejected = false;
    bool dbg_lint_rejected = false;
    /// The stage's candidate was lint-rejected but statically repaired
    /// to an error-free DVQ which the pipeline accepted
    /// (GredConfig::enable_repair). Mutually exclusive with the
    /// corresponding *_lint_rejected / *_degraded flags.
    bool rtn_repaired = false;
    bool dbg_repaired = false;
  };
  /// Snapshot of the most recently completed Translate's trace (copied
  /// under the trace mutex; under concurrency "last" means whichever
  /// call committed its trace last).
  Trace last_trace() const;

  /// Per-call pipeline controls, for callers that must shed work on
  /// some requests without rebuilding the pipeline (the serving layer's
  /// brownout mode, DESIGN.md §16). A disabled stage is *skipped* — not
  /// degraded: no LLM call is made, no degradation counter moves, and
  /// the previous stage's DVQ carries forward exactly as if the stage
  /// were disabled in GredConfig. Defaults run the full pipeline, so
  /// `TranslateOptions{}` is byte-identical to the plain overloads.
  struct TranslateOptions {
    bool enable_retuner = true;
    bool enable_debugger = true;
  };

  /// Translate variant reporting this call's trace through `trace_out`
  /// (may be null). Under concurrency `last_trace()` only reflects
  /// whichever call committed last, so callers that need *their own*
  /// call's degradation flags — the serving layer stamps them into
  /// every response — use this overload instead of racing on
  /// `last_trace()`. The shared trace is still committed, so
  /// `last_trace()` semantics are unchanged; `Translate(nlq, db)` is
  /// exactly this call with a null `trace_out`.
  Result<dvq::DVQ> TranslateWithTrace(const std::string& nlq,
                                      const storage::DatabaseData& db,
                                      Trace* trace_out) const;

  /// TranslateWithTrace with per-call stage controls (see
  /// TranslateOptions); the three-argument overload is exactly this
  /// call with default options.
  Result<dvq::DVQ> TranslateWithTrace(const std::string& nlq,
                                      const storage::DatabaseData& db,
                                      Trace* trace_out,
                                      const TranslateOptions& options) const;

  /// Cumulative wall time spent in each pipeline stage across every
  /// Translate on this instance (summed over threads in parallel runs).
  struct StageStats {
    double retrieval_seconds = 0.0;  // NLQ-Retrieval Generator
    double retune_seconds = 0.0;     // DVQ-Retrieval Retuner
    double debug_seconds = 0.0;      // Annotation-based Debugger
    std::uint64_t translate_calls = 0;
    /// Translate calls whose retuner / debugger stage fell back to the
    /// previous stage's DVQ (zero unless the LLM actually fails).
    std::uint64_t retune_degraded = 0;
    std::uint64_t debug_degraded = 0;
    /// Subset of the degradations above caused specifically by the
    /// per-stage resource budget (GredConfig::stage_limits) tripping
    /// while validating the stage's completion.
    std::uint64_t retune_budget_trips = 0;
    std::uint64_t debug_budget_trips = 0;
    /// Degradations caused by the static analysis gate: the stage's
    /// candidate parsed but carried an error-level diagnostic
    /// (GredConfig::enable_lint; zero when linting is off).
    std::uint64_t retune_lint_trips = 0;
    std::uint64_t debug_lint_trips = 0;
    /// Lint-rejected candidates rescued by the static repairer and
    /// accepted (GredConfig::enable_repair; zero when repair is off).
    /// Disjoint from the lint-trip counters: a repaired candidate is
    /// not counted degraded.
    std::uint64_t retune_repairs = 0;
    std::uint64_t debug_repairs = 0;
  };
  StageStats stage_stats() const;

  /// Hit/miss counters of the shared embedding cache (all Translate
  /// threads embed through one CachingEmbedder; fault sweeps and k-sweeps
  /// re-embed the same NLQs, so hits dominate on re-runs).
  embed::CachingEmbedder::Stats embed_cache_stats() const {
    return embedder_->stats();
  }

  const GredConfig& config() const { return config_; }

 private:
  /// Parses stage output under config_.stage_limits (one accounted tick
  /// per token); see GredConfig::stage_limits for the degradation
  /// contract. Unlimited limits parse unguarded.
  Result<dvq::DVQ> ParseWithinStageBudget(const std::string& text,
                                          bool* budget_tripped) const;

  /// Annotation collection, keyed by schema fingerprint (clean and
  /// perturbed corpora share database names but not schemas). Failures
  /// are cached alongside successes: a schema's annotation outcome is
  /// decided exactly once per Gred instance, which keeps fault-injected
  /// runs deterministic (later calls replay the cached outcome instead
  /// of re-drawing faults under racy thread interleavings).
  Result<std::string> AnnotationsFor(const schema::Database& db) const;

  GredConfig config_;
  const llm::ChatModel* llm_;  // not owned
  const std::vector<dataset::GeneratedDatabase>* databases_;
  std::unique_ptr<embed::CachingEmbedder> embedder_;
  std::unique_ptr<models::ExampleIndex> nlq_index_;
  std::unique_ptr<models::DvqIndex> dvq_index_;
  std::map<std::string, std::string> db_schema_prompts_;  // by db name
  /// Schema prompt per training example (nullptr when the example's
  /// database is unknown), resolved once at construction so Translate
  /// never lower-cases a db name on the retrieval hot path.
  std::vector<const std::string*> example_schema_prompts_;
  mutable std::mutex annotation_mutex_;  // guards annotation_cache_
  mutable std::map<std::string, Result<std::string>> annotation_cache_;
  mutable std::mutex trace_mutex_;  // guards trace_
  mutable Trace trace_;
  mutable AtomicDuration retrieval_time_;
  mutable AtomicDuration retune_time_;
  mutable AtomicDuration debug_time_;
  mutable std::atomic<std::uint64_t> translate_calls_{0};
  mutable std::atomic<std::uint64_t> retune_degraded_{0};
  mutable std::atomic<std::uint64_t> debug_degraded_{0};
  mutable std::atomic<std::uint64_t> retune_budget_trips_{0};
  mutable std::atomic<std::uint64_t> debug_budget_trips_{0};
  mutable std::atomic<std::uint64_t> retune_lint_trips_{0};
  mutable std::atomic<std::uint64_t> debug_lint_trips_{0};
  mutable std::atomic<std::uint64_t> retune_repairs_{0};
  mutable std::atomic<std::uint64_t> debug_repairs_{0};
};

}  // namespace gred::core

#endif  // GREDVIS_GRED_GRED_H_
