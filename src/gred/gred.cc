#include "gred/gred.h"

#include <algorithm>

#include "analysis/analyzer.h"
#include "analysis/repairer.h"
#include "dvq/parser.h"
#include "llm/prompt.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gred::core {

namespace {

/// Working-phase sampling parameters (Section 5.1).
llm::ChatOptions WorkingOptions() {
  llm::ChatOptions options;
  options.temperature = 0.0;
  options.frequency_penalty = -0.5;
  options.presence_penalty = -0.5;
  return options;
}

/// Preparation-phase sampling parameters (Section 5.1).
llm::ChatOptions PreparationOptions() {
  return llm::ChatOptions{};  // all zeros
}

}  // namespace

Result<std::string> GenerateAnnotations(const schema::Database& db,
                                        const llm::ChatModel& llm) {
  llm::Prompt prompt = llm::BuildAnnotationPrompt(db);
  return llm.Complete(prompt, PreparationOptions());
}

Gred::Gred(const models::TrainingCorpus& corpus, const llm::ChatModel* llm,
           GredConfig config)
    : config_(std::move(config)), llm_(llm), databases_(corpus.databases) {
  // Preparatory phase (Section 4.1): the embedding vector library over
  // the training split's NLQs and DVQs, built with the semantic embedder
  // (the stand-in for text-embedding-3-large). The memoizing wrapper is
  // shared by every Translate thread: fault sweeps and k-sweeps re-embed
  // the same NLQs and generator outputs, which become cache hits.
  embedder_ = std::make_unique<embed::CachingEmbedder>(
      std::make_unique<embed::SemanticHashEmbedder>());
  nlq_index_ = std::make_unique<models::ExampleIndex>(corpus.train,
                                                      embedder_.get());
  dvq_index_ =
      std::make_unique<models::DvqIndex>(corpus.train, embedder_.get());
  for (const dataset::GeneratedDatabase& db : *corpus.databases) {
    db_schema_prompts_[strings::ToLower(db.data.name())] =
        db.data.db_schema().RenderSchemaPrompt();
  }
  // Resolve each training example's schema prompt once (db names need
  // lower-casing); Translate used to redo this on every retrieval hit.
  example_schema_prompts_.reserve(corpus.train->size());
  for (const dataset::Example& ex : *corpus.train) {
    auto it = db_schema_prompts_.find(strings::ToLower(ex.db_name));
    example_schema_prompts_.push_back(
        it == db_schema_prompts_.end() ? nullptr : &it->second);
  }
}

Result<std::string> Gred::AnnotationsFor(const schema::Database& db) const {
  std::string fingerprint =
      strings::Format("%016llx", static_cast<unsigned long long>(
                                     Fnv1a64(db.RenderSchemaPrompt())));
  {
    std::lock_guard<std::mutex> lock(annotation_mutex_);
    auto it = annotation_cache_.find(fingerprint);
    if (it != annotation_cache_.end()) return it->second;
  }
  // Generate outside the lock so a miss does not serialize concurrent
  // Translate calls on other databases. The outcome — success or failure
  // — is cached either way: the first insert wins, so every later call
  // replays the same result (with a fault-injecting LLM this is what
  // keeps a schema's annotation fate independent of thread interleaving).
  Result<std::string> annotations = GenerateAnnotations(db, *llm_);
  std::lock_guard<std::mutex> lock(annotation_mutex_);
  return annotation_cache_.emplace(fingerprint, std::move(annotations))
      .first->second;
}

Result<std::size_t> Gred::PrepareAnnotations(
    const std::vector<dataset::GeneratedDatabase>& databases) const {
  std::size_t annotated = 0;
  for (const dataset::GeneratedDatabase& db : databases) {
    if (AnnotationsFor(db.data.db_schema()).ok()) ++annotated;
  }
  return annotated;
}

Gred::Trace Gred::last_trace() const {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  return trace_;
}

Gred::StageStats Gred::stage_stats() const {
  StageStats stats;
  stats.retrieval_seconds = retrieval_time_.seconds();
  stats.retune_seconds = retune_time_.seconds();
  stats.debug_seconds = debug_time_.seconds();
  stats.translate_calls = translate_calls_.load(std::memory_order_relaxed);
  stats.retune_degraded = retune_degraded_.load(std::memory_order_relaxed);
  stats.debug_degraded = debug_degraded_.load(std::memory_order_relaxed);
  stats.retune_budget_trips =
      retune_budget_trips_.load(std::memory_order_relaxed);
  stats.debug_budget_trips =
      debug_budget_trips_.load(std::memory_order_relaxed);
  stats.retune_lint_trips = retune_lint_trips_.load(std::memory_order_relaxed);
  stats.debug_lint_trips = debug_lint_trips_.load(std::memory_order_relaxed);
  stats.retune_repairs = retune_repairs_.load(std::memory_order_relaxed);
  stats.debug_repairs = debug_repairs_.load(std::memory_order_relaxed);
  return stats;
}

/// Validates a stage's DVQ text under the configured per-stage budget.
/// With unlimited stage_limits this is a plain Parse — bit-identical to
/// the pre-guard pipeline. `budget_tripped` (optional) reports whether
/// the parse failed specifically because the budget ran out.
Result<dvq::DVQ> Gred::ParseWithinStageBudget(const std::string& text,
                                              bool* budget_tripped) const {
  if (budget_tripped != nullptr) *budget_tripped = false;
  if (config_.stage_limits.Unlimited()) return dvq::Parse(text);
  ExecContext guard(config_.stage_limits);
  Result<dvq::DVQ> parsed = dvq::Parse(text, &guard);
  if (!parsed.ok() && parsed.status().IsResourceExhausted() &&
      budget_tripped != nullptr) {
    *budget_tripped = true;
  }
  return parsed;
}

Result<dvq::DVQ> Gred::Translate(const std::string& nlq,
                                 const storage::DatabaseData& db) const {
  return TranslateWithTrace(nlq, db, nullptr);
}

Result<dvq::DVQ> Gred::TranslateWithTrace(const std::string& nlq,
                                          const storage::DatabaseData& db,
                                          Trace* trace_out) const {
  return TranslateWithTrace(nlq, db, trace_out, TranslateOptions{});
}

Result<dvq::DVQ> Gred::TranslateWithTrace(
    const std::string& nlq, const storage::DatabaseData& db, Trace* trace_out,
    const TranslateOptions& options) const {
  // The trace is built locally and committed at the end so concurrent
  // Translate calls never interleave writes into trace_; `trace_out`
  // receives this call's own copy (per-request flags for the serving
  // layer, race-free under concurrent sessions).
  Trace trace;
  translate_calls_.fetch_add(1, std::memory_order_relaxed);
  auto commit_trace = [this, &trace, trace_out] {
    if (trace_out != nullptr) *trace_out = trace;
    std::lock_guard<std::mutex> lock(trace_mutex_);
    trace_ = trace;
  };

  // --- NLQ-Retrieval Generator -------------------------------------------
  std::string current;
  std::string target_schema;
  {
    ScopedTimer timer(&retrieval_time_);
    std::vector<models::ExampleIndex::Hit> hits =
        nlq_index_->TopK(nlq, config_.k);
    if (hits.empty()) {
      commit_trace();
      return Status::NotFound("GRED: empty embedding library");
    }
    // hits are descending by similarity; the paper assembles the prompt in
    // ascending order so the most similar example sits next to the
    // question.
    if (config_.ascending_prompt_order) {
      std::reverse(hits.begin(), hits.end());
    }
    std::vector<llm::GenerationExample> examples;
    examples.reserve(hits.size());
    for (const models::ExampleIndex::Hit& hit : hits) {
      llm::GenerationExample ex;
      const std::string* schema_prompt = example_schema_prompts_[hit.index];
      if (schema_prompt != nullptr) {
        ex.schema_prompt = *schema_prompt;
      }
      ex.nlq = hit.example->nlq;
      ex.dvq = hit.example->DvqText();
      examples.push_back(std::move(ex));
    }
    target_schema = db.db_schema().RenderSchemaPrompt();
    llm::Prompt gen_prompt =
        llm::BuildGenerationPrompt(examples, target_schema, nlq);
    Result<std::string> gen_completion =
        llm_->Complete(gen_prompt, WorkingOptions());
    if (!gen_completion.ok()) {
      commit_trace();
      return gen_completion.status();
    }
    std::string dvq_gen = llm::ExtractDvqText(gen_completion.value());
    if (dvq_gen.empty()) {
      commit_trace();
      return Status::ExecutionError("GRED: generator produced no DVQ");
    }
    trace.dvq_gen = dvq_gen;
    current = dvq_gen;
  }

  // --- DVQ-Retrieval Retuner ----------------------------------------------
  // A retuner failure — transient LLM error surviving retries, or a
  // completion with no extractable DVQ — degrades rather than fails the
  // call: the generator's DVQ carries forward, the trace keeps dvq_rtn
  // empty (the stage produced nothing) and marks the stage degraded.
  if (config_.enable_retuner && options.enable_retuner) {
    ScopedTimer timer(&retune_time_);
    std::vector<models::DvqIndex::Hit> dvq_hits =
        dvq_index_->TopK(current, config_.k);
    std::vector<std::string> references;
    references.reserve(dvq_hits.size());
    for (const models::DvqIndex::Hit& hit : dvq_hits) {
      references.push_back(hit.example->DvqText());
    }
    llm::Prompt retune_prompt = llm::BuildRetunePrompt(references, current);
    Result<std::string> retune_completion =
        llm_->Complete(retune_prompt, WorkingOptions());
    std::string dvq_rtn;
    if (retune_completion.ok()) {
      dvq_rtn = llm::ExtractDvqText(retune_completion.value());
    }
    // Accept the stage's output only when it is a parseable DVQ within
    // the per-stage budget: a truncated/corrupted/oversized completion
    // must not replace a healthy DVQ. With enable_lint the bar rises:
    // a candidate the analyzer proves broken against the schema
    // (error-level diagnostic) is rejected exactly like a budget trip.
    bool budget_tripped = false;
    bool lint_rejected = false;
    Result<dvq::DVQ> parsed_rtn =
        dvq_rtn.empty()
            ? Result<dvq::DVQ>(Status::ParseError("retuner produced no DVQ"))
            : ParseWithinStageBudget(dvq_rtn, &budget_tripped);
    if (parsed_rtn.ok() && config_.enable_lint) {
      analysis::DvqAnalyzer analyzer(&db.db_schema());
      lint_rejected = analysis::HasErrors(analyzer.Analyze(parsed_rtn.value()));
      // One deterministic repair attempt before degradation
      // (DESIGN.md §17): an error-free repaired candidate is accepted
      // in place of the rejected one.
      if (lint_rejected && config_.enable_repair) {
        analysis::DvqRepairer repairer(&db.db_schema());
        analysis::RepairResult repaired = repairer.Repair(parsed_rtn.value());
        if (repaired.success) {
          dvq_rtn = repaired.dvq.ToString();
          lint_rejected = false;
          trace.rtn_repaired = true;
          retune_repairs_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (!parsed_rtn.ok() || lint_rejected) {
      trace.rtn_degraded = true;
      trace.rtn_lint_rejected = lint_rejected;
      retune_degraded_.fetch_add(1, std::memory_order_relaxed);
      if (budget_tripped) {
        retune_budget_trips_.fetch_add(1, std::memory_order_relaxed);
      }
      if (lint_rejected) {
        retune_lint_trips_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      trace.dvq_rtn = dvq_rtn;
      current = std::move(dvq_rtn);
    }
  }

  // --- Annotation-based Debugger -------------------------------------------
  // Same fallback contract as the retuner; an annotation-generation
  // failure (cached per schema) also degrades the stage.
  if (config_.enable_debugger && options.enable_debugger) {
    ScopedTimer timer(&debug_time_);
    bool degraded = false;
    std::string annotations;
    if (config_.debugger_uses_annotations) {
      Result<std::string> fetched = AnnotationsFor(db.db_schema());
      if (fetched.ok()) {
        annotations = fetched.value();
      } else {
        degraded = true;
      }
    }
    if (!degraded) {
      // With linting on, the debugger does not rediscover schema
      // mismatches from the annotations alone: the analyzer's findings
      // on the incoming DVQ ride along in the prompt as structured
      // repair evidence (empty findings leave the prompt byte-identical
      // to the stock C.4 prompt).
      std::string lint_findings;
      if (config_.enable_lint) {
        Result<dvq::DVQ> incoming = dvq::Parse(current);
        if (incoming.ok()) {
          analysis::DvqAnalyzer analyzer(&db.db_schema());
          lint_findings =
              analysis::RenderDiagnostics(analyzer.Analyze(incoming.value()));
        }
      }
      llm::Prompt debug_prompt = llm::BuildDebugPrompt(
          target_schema, annotations, current, lint_findings);
      Result<std::string> debug_completion =
          llm_->Complete(debug_prompt, WorkingOptions());
      std::string dvq_dbg;
      if (debug_completion.ok()) {
        dvq_dbg = llm::ExtractDvqText(debug_completion.value());
      }
      bool budget_tripped = false;
      bool lint_rejected = false;
      Result<dvq::DVQ> parsed_dbg =
          dvq_dbg.empty()
              ? Result<dvq::DVQ>(
                    Status::ParseError("debugger produced no DVQ"))
              : ParseWithinStageBudget(dvq_dbg, &budget_tripped);
      if (parsed_dbg.ok() && config_.enable_lint) {
        analysis::DvqAnalyzer analyzer(&db.db_schema());
        lint_rejected =
            analysis::HasErrors(analyzer.Analyze(parsed_dbg.value()));
        if (lint_rejected && config_.enable_repair) {
          analysis::DvqRepairer repairer(&db.db_schema());
          analysis::RepairResult repaired =
              repairer.Repair(parsed_dbg.value());
          if (repaired.success) {
            dvq_dbg = repaired.dvq.ToString();
            lint_rejected = false;
            trace.dbg_repaired = true;
            debug_repairs_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      if (!parsed_dbg.ok() || lint_rejected) {
        degraded = true;
        trace.dbg_lint_rejected = lint_rejected;
        if (budget_tripped) {
          debug_budget_trips_.fetch_add(1, std::memory_order_relaxed);
        }
        if (lint_rejected) {
          debug_lint_trips_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        trace.dvq_dbg = dvq_dbg;
        current = std::move(dvq_dbg);
      }
    }
    if (degraded) {
      trace.dbg_degraded = true;
      debug_degraded_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  commit_trace();
  // The final parse is the generator-or-survivor DVQ: there is nothing
  // to fall back to, so a tripped budget here surfaces as a typed
  // kResourceExhausted (the generator-failure convention).
  return ParseWithinStageBudget(current, nullptr);
}

}  // namespace gred::core
