#include "embed/embedder.h"

#include <cmath>

#include "nl/text.h"
#include "util/rng.h"

namespace gred::embed {

double CosineSimilarity(const Vector& a, const Vector& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void L2Normalize(Vector* v) {
  double norm = 0.0;
  for (float x : *v) norm += static_cast<double>(x) * x;
  if (norm == 0.0) return;
  const float inv = static_cast<float>(1.0 / std::sqrt(norm));
  for (float& x : *v) x *= inv;
}

namespace {

/// Adds one hashed feature with a hash-derived sign (feature hashing with
/// signed buckets keeps collisions unbiased).
void AddFeature(const std::string& feature, double weight, Vector* out) {
  std::uint64_t h = Fnv1a64(feature);
  std::size_t bucket = static_cast<std::size_t>(h % out->size());
  float sign = (h >> 63) != 0 ? -1.0f : 1.0f;
  (*out)[bucket] += sign * static_cast<float>(weight);
}

}  // namespace

SemanticHashEmbedder::SemanticHashEmbedder(const nl::Lexicon* lexicon,
                                           EmbedderOptions options)
    : lexicon_(lexicon), options_(options) {}

SemanticHashEmbedder::SemanticHashEmbedder()
    : SemanticHashEmbedder(&nl::Lexicon::Default(), EmbedderOptions()) {}

Vector SemanticHashEmbedder::Embed(const std::string& text) const {
  Vector out(options_.dimension, 0.0f);
  std::vector<std::string> tokens = nl::Tokenize(text);
  for (const std::string& token : tokens) {
    if (nl::IsStopword(token)) continue;
    if (options_.token_weight > 0.0) {
      AddFeature("tok:" + nl::Stem(token), options_.token_weight, &out);
    }
    if (options_.concept_weight > 0.0 && lexicon_ != nullptr) {
      std::string concept_id = lexicon_->ConceptIdOf(token);
      if (!concept_id.empty()) {
        AddFeature("con:" + concept_id, options_.concept_weight, &out);
      }
    }
  }
  if (options_.trigram_weight > 0.0) {
    std::string joined;
    for (const std::string& token : tokens) {
      joined += token;
      joined += ' ';
    }
    if (joined.size() >= 3) {
      for (std::size_t i = 0; i + 3 <= joined.size(); ++i) {
        AddFeature("tri:" + joined.substr(i, 3), options_.trigram_weight,
                   &out);
      }
    }
  }
  L2Normalize(&out);
  return out;
}

LexicalHashEmbedder::LexicalHashEmbedder(EmbedderOptions options)
    : impl_(nullptr, [&options] {
        EmbedderOptions lexical = options;
        lexical.concept_weight = 0.0;
        return lexical;
      }()) {}

Vector LexicalHashEmbedder::Embed(const std::string& text) const {
  return impl_.Embed(text);
}

}  // namespace gred::embed
