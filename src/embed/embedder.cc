#include "embed/embedder.h"

#include <cmath>

#include "nl/text.h"
#include "util/rng.h"

namespace gred::embed {

double CosineSimilarity(const Vector& a, const Vector& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void L2Normalize(Vector* v) {
  double norm = 0.0;
  for (float x : *v) norm += static_cast<double>(x) * x;
  if (norm == 0.0) return;
  const float inv = static_cast<float>(1.0 / std::sqrt(norm));
  for (float& x : *v) x *= inv;
}

namespace {

/// Adds one hashed feature with a hash-derived sign (feature hashing with
/// signed buckets keeps collisions unbiased). `h` is the FNV-1a hash of
/// the full prefixed feature string.
void AddFeatureHash(std::uint64_t h, double weight, Vector* out) {
  std::size_t bucket = static_cast<std::size_t>(h % out->size());
  float sign = (h >> 63) != 0 ? -1.0f : 1.0f;
  (*out)[bucket] += sign * static_cast<float>(weight);
}

// FNV-1a folds bytes left to right, so hashing a feature's payload from
// the pre-hashed prefix state is bit-identical to hashing the
// concatenated "prefix + payload" string — same buckets, same signs as
// the seed implementation — without materializing the temporary.
const std::uint64_t kTokPrefix = Fnv1a64("tok:", 4);
const std::uint64_t kConPrefix = Fnv1a64("con:", 4);
const std::uint64_t kTriPrefix = Fnv1a64("tri:", 4);

}  // namespace

SemanticHashEmbedder::SemanticHashEmbedder(const nl::Lexicon* lexicon,
                                           EmbedderOptions options)
    : lexicon_(lexicon), options_(options) {}

SemanticHashEmbedder::SemanticHashEmbedder()
    : SemanticHashEmbedder(&nl::Lexicon::Default(), EmbedderOptions()) {}

Vector SemanticHashEmbedder::Embed(const std::string& text) const {
  Vector out(options_.dimension, 0.0f);
  std::vector<std::string> tokens = nl::Tokenize(text);
  // Per-call scratch for the stem: its capacity is reused across the
  // token loop, so after the first few tokens the loop allocates nothing
  // (features are hashed by FNV continuation, never concatenated).
  std::string stem;
  for (const std::string& token : tokens) {
    if (nl::IsStopword(token)) continue;
    const bool want_concept =
        options_.concept_weight > 0.0 && lexicon_ != nullptr;
    if (options_.token_weight > 0.0 || want_concept) {
      nl::StemInto(token, &stem);
    }
    if (options_.token_weight > 0.0) {
      AddFeatureHash(Fnv1a64Continue(kTokPrefix, stem),
                     options_.token_weight, &out);
    }
    if (want_concept) {
      int idx = lexicon_->ConceptIndexOfStem(stem);
      if (idx >= 0) {
        const std::string& concept_id =
            lexicon_->concepts()[static_cast<std::size_t>(idx)].id;
        AddFeatureHash(Fnv1a64Continue(kConPrefix, concept_id),
                       options_.concept_weight, &out);
      }
    }
  }
  if (options_.trigram_weight > 0.0) {
    std::string joined;
    std::size_t total = 0;
    for (const std::string& token : tokens) total += token.size() + 1;
    joined.reserve(total);
    for (const std::string& token : tokens) {
      joined += token;
      joined += ' ';
    }
    if (joined.size() >= 3) {
      for (std::size_t i = 0; i + 3 <= joined.size(); ++i) {
        AddFeatureHash(Fnv1a64Continue(kTriPrefix, joined.data() + i, 3),
                       options_.trigram_weight, &out);
      }
    }
  }
  L2Normalize(&out);
  return out;
}

LexicalHashEmbedder::LexicalHashEmbedder(EmbedderOptions options)
    : impl_(nullptr, [&options] {
        EmbedderOptions lexical = options;
        lexical.concept_weight = 0.0;
        return lexical;
      }()) {}

Vector LexicalHashEmbedder::Embed(const std::string& text) const {
  return impl_.Embed(text);
}

}  // namespace gred::embed
