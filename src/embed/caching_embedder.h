#ifndef GREDVIS_EMBED_CACHING_EMBEDDER_H_
#define GREDVIS_EMBED_CACHING_EMBEDDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "embed/embedder.h"

namespace gred::embed {

/// Thread-safe memoizing wrapper around a deterministic TextEmbedder.
///
/// Repeated embeds of the same text are common: every eval thread embeds
/// the same NLQs during fault sweeps and k-sweeps, and GRED's retuner
/// re-embeds generator outputs that collide across examples. The cache is
/// sharded by text fingerprint (FNV-1a), so concurrent eval threads
/// rarely contend on the same mutex; entries verify the full text on hit,
/// so a fingerprint collision falls back to computing (never returns the
/// wrong embedding). Misses compute outside the shard lock — the inner
/// embedder must be deterministic (all of ours are), making a double
/// compute harmless.
class CachingEmbedder : public TextEmbedder {
 public:
  /// Wraps `inner` (owned).
  explicit CachingEmbedder(std::unique_ptr<TextEmbedder> inner,
                           std::size_t num_shards = 16);

  Vector Embed(const std::string& text) const override;
  std::size_t dimension() const override { return inner_->dimension(); }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::pair<std::string, Vector>> cache;
  };

  std::unique_ptr<TextEmbedder> inner_;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_CACHING_EMBEDDER_H_
