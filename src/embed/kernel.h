#ifndef GREDVIS_EMBED_KERNEL_H_
#define GREDVIS_EMBED_KERNEL_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace gred::embed {

/// One retrieval result: the insertion index of a stored vector and its
/// cosine similarity to the query. Shared by VectorStore and IvfIndex.
struct Hit {
  std::size_t index = 0;  // insertion index (payload handle)
  double score = 0.0;     // cosine similarity
};

/// Blocked dot product over `n` floats with independent accumulators.
///
/// The seed implementation summed one `double` at a time, so every add
/// sat on the previous add's latency; splitting the sum across four
/// accumulator chains lets the compiler vectorize and keeps the FP units
/// busy. Products are still taken in `double` (exact for float inputs),
/// so the only deviation from the strictly sequential sum is the final
/// reassociation of four partial sums — error on the order of 1e-15 for
/// unit vectors, far below any score gap that survives the deterministic
/// index tie-break. Accumulating in `float` instead would be ~1e-7 loose,
/// enough to flip real rankings, so the kernel deliberately keeps the
/// promotion (a free lane-widening convert on the load path).
double DotBlocked(const float* a, const float* b, std::size_t n);

/// Ordering shared by every retrieval surface: higher score first, ties
/// broken by lower insertion index (deterministic).
inline bool HitBetter(const Hit& a, const Hit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

/// Bounded top-k selection without materializing all candidates.
///
/// Keeps at most `k` hits in a min-heap ordered by HitBetter (worst hit
/// at the root), so offering n candidates costs O(n log k) time and O(k)
/// memory instead of the seed's O(n) hit buffer + partial_sort. The
/// selected set — and, after Take(), its order — is bit-identical to
/// sorting all candidates with HitBetter and truncating, regardless of
/// offer order, because HitBetter is a strict total order (no two hits
/// share an index).
class TopKSelector {
 public:
  explicit TopKSelector(std::size_t k) : k_(k) { heap_.reserve(k); }

  void Offer(std::size_t index, double score) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(Hit{index, score});
      std::push_heap(heap_.begin(), heap_.end(), HitBetter);
      return;
    }
    if (!HitBetter(Hit{index, score}, heap_.front())) return;
    std::pop_heap(heap_.begin(), heap_.end(), HitBetter);
    heap_.back() = Hit{index, score};
    std::push_heap(heap_.begin(), heap_.end(), HitBetter);
  }

  /// Extracts the selected hits, best first. Leaves the selector empty.
  std::vector<Hit> Take() {
    std::sort(heap_.begin(), heap_.end(), HitBetter);
    return std::move(heap_);
  }

 private:
  std::size_t k_;
  std::vector<Hit> heap_;
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_KERNEL_H_
