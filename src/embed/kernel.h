#ifndef GREDVIS_EMBED_KERNEL_H_
#define GREDVIS_EMBED_KERNEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gred::embed {

/// One retrieval result: the insertion index of a stored vector and its
/// cosine similarity to the query. Shared by VectorStore and IvfIndex.
struct Hit {
  std::size_t index = 0;  // insertion index (payload handle)
  double score = 0.0;     // cosine similarity
};

/// Instruction-set targets the float dot kernel can dispatch to. Which
/// targets exist in a binary is decided at build time (CMake feature
/// detection defines GRED_KERNEL_AVX2 / GRED_KERNEL_NEON /
/// GRED_KERNEL_PORTABLE_SIMD); which one runs is decided once at startup
/// from CPU capabilities, overridable with GRED_DOT_TARGET.
///
/// Every target computes the *same arithmetic DAG* as the scalar
/// reference DotBlocked — four independent double accumulator chains,
/// lane j summing elements j, j+4, j+8, ... in order, tail folded into
/// lane 0, final reduction (l0+l1)+(l2+l3) — so all targets return
/// bit-identical doubles. AVX2 maps the four chains onto one __m256d
/// accumulator (the float->double product is exact, so fused
/// multiply-add rounds exactly like multiply-then-add); NEON maps them
/// onto two float64x2 accumulators; the portable variant annotates the
/// four-lane inner loop with `#pragma omp simd` (compiled with
/// -fopenmp-simd when available, a no-op pragma otherwise).
enum class DotTarget {
  kScalar = 0,    // DotBlocked, always compiled
  kPortable = 1,  // omp-simd-annotated four-lane loop, always compiled
  kAvx2 = 2,      // x86 AVX2+FMA, compiled when the toolchain supports it
  kNeon = 3,      // aarch64 NEON, compiled when the toolchain supports it
};

/// Short stable name ("scalar", "portable", "avx2", "neon") used by
/// GRED_DOT_TARGET, benchmark reports, and test output.
const char* DotTargetName(DotTarget target);

/// Targets compiled into this binary AND supported by this CPU (AVX2 is
/// compiled in unconditionally on capable toolchains but only *runs*
/// when __builtin_cpu_supports agrees). kScalar is always present.
std::vector<DotTarget> SupportedDotTargets();

/// The target Dot() dispatches to: GRED_DOT_TARGET when set (its value
/// must name a supported target — anything else, including a target the
/// CPU cannot run, prints a message and exits(2), matching the bench
/// env-override convention), otherwise the fastest supported target.
/// Decided once per process, thread-safely.
DotTarget ActiveDotTarget();

/// Dot product of `n` floats through the active SIMD target. The hot
/// entry point of every retrieval scan; bit-identical to DotBlocked on
/// every target by the DAG argument above.
double Dot(const float* a, const float* b, std::size_t n);

/// Dot through an explicit target (equivalence tests and benchmarks).
/// `target` must be in SupportedDotTargets().
double DotWithTarget(DotTarget target, const float* a, const float* b,
                     std::size_t n);

/// Blocked dot product over `n` floats with independent accumulators:
/// the scalar reference every SIMD target must match bit for bit.
///
/// The seed implementation summed one `double` at a time, so every add
/// sat on the previous add's latency; splitting the sum across four
/// accumulator chains lets the compiler vectorize and keeps the FP units
/// busy. Products are still taken in `double` (exact for float inputs),
/// so the only deviation from the strictly sequential sum is the final
/// reassociation of four partial sums — error on the order of 1e-15 for
/// unit vectors, far below any score gap that survives the deterministic
/// index tie-break. Accumulating in `float` instead would be ~1e-7 loose,
/// enough to flip real rankings, so the kernel deliberately keeps the
/// promotion (a free lane-widening convert on the load path).
double DotBlocked(const float* a, const float* b, std::size_t n);

/// Exact integer dot product of two uint8 code rows (the int8-quantized
/// scan; see quantized_vectors.h). Integer arithmetic has no rounding,
/// so every target is trivially bit-identical; the AVX2 variant widens
/// 16 codes at a time to int16 and multiply-accumulates into int32
/// lanes. `n` must stay below kMaxCodeDot to keep the int32 lane
/// accumulators from overflowing (255*255 per product, two products per
/// lane per step).
std::int64_t DotCodes(const std::uint8_t* a, const std::uint8_t* b,
                      std::size_t n);

/// DotCodes through an explicit target (equivalence tests).
std::int64_t DotCodesWithTarget(DotTarget target, const std::uint8_t* a,
                                const std::uint8_t* b, std::size_t n);

/// Largest code-row length DotCodes accepts without risking lane
/// overflow in the vector variants: the AVX2 int32 lanes gain at most
/// 2*65025 per 16-code step (2,130,739,200 < INT32_MAX at 16384 steps),
/// and the NEON uint32 lanes at most 4*65025 per step. Quantized rows
/// are far shorter than this in practice (embedder dimensions).
inline constexpr std::size_t kMaxCodeDot = std::size_t{1} << 18;

/// Ordering shared by every retrieval surface: higher score first, ties
/// broken by lower insertion index (deterministic).
inline bool HitBetter(const Hit& a, const Hit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

/// Bounded top-k selection without materializing all candidates.
///
/// Keeps at most `k` hits in a min-heap ordered by HitBetter (worst hit
/// at the root), so offering n candidates costs O(n log k) time and O(k)
/// memory instead of the seed's O(n) hit buffer + partial_sort. The
/// selected set — and, after Take(), its order — is bit-identical to
/// sorting all candidates with HitBetter and truncating, regardless of
/// offer order, because HitBetter is a strict total order (no two hits
/// share an index).
class TopKSelector {
 public:
  explicit TopKSelector(std::size_t k) : k_(k) { heap_.reserve(k); }

  void Offer(std::size_t index, double score) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(Hit{index, score});
      std::push_heap(heap_.begin(), heap_.end(), HitBetter);
      return;
    }
    if (!HitBetter(Hit{index, score}, heap_.front())) return;
    std::pop_heap(heap_.begin(), heap_.end(), HitBetter);
    heap_.back() = Hit{index, score};
    std::push_heap(heap_.begin(), heap_.end(), HitBetter);
  }

  /// Extracts the selected hits, best first. Leaves the selector empty.
  std::vector<Hit> Take() {
    std::sort(heap_.begin(), heap_.end(), HitBetter);
    return std::move(heap_);
  }

 private:
  std::size_t k_;
  std::vector<Hit> heap_;
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_KERNEL_H_
