#ifndef GREDVIS_EMBED_RETRIEVAL_INDEX_H_
#define GREDVIS_EMBED_RETRIEVAL_INDEX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "embed/ann_index.h"
#include "embed/embedder.h"
#include "embed/kernel.h"
#include "embed/vector_store.h"

namespace gred::embed {

/// Which search machinery answers a retrieval query.
enum class RetrievalBackend {
  kExact = 0,      // brute-force float scan (bit-identical reference)
  kQuantized = 1,  // int8 scan + exact re-rank of a widened shortlist
  kIvf = 2,        // IVF multi-probe (+ int8 list scans) + exact re-rank
};

/// Stable names ("exact", "quantized", "ivf") for env/config/report use.
const char* RetrievalBackendName(RetrievalBackend backend);

/// Configuration of a RetrievalIndex.
///
/// FromEnv() reads the process-wide knobs — every retrieval surface
/// (Gred's NLQ/DVQ libraries, eval, `gredvis serve`) constructs its
/// indexes through it, so one environment variable flips the whole
/// pipeline between exact and approximate retrieval:
///   GRED_RETRIEVAL_BACKEND   exact | quantized | ivf   (default exact)
///   GRED_RETRIEVAL_PROBES    IVF probe count            (default 8)
///   GRED_RETRIEVAL_CLUSTERS  IVF cluster count, 0 = auto ~sqrt(n)
///   GRED_RETRIEVAL_RERANK    shortlist widening factor  (default 4)
/// Invalid values print a message and exit(2) (the bench env-override
/// convention: a mistyped knob must not silently fall back and burn a
/// run on the wrong configuration). The default is exact, so unset
/// environments — every committed eval table — are byte-identical to
/// the brute-force pipeline.
struct RetrievalConfig {
  RetrievalBackend backend = RetrievalBackend::kExact;
  /// Quantized-backend shortlist widening (see ShortlistSize).
  std::size_t rerank_factor = 4;
  std::size_t rerank_slack = 32;
  /// IVF-backend options. FromEnv sets quantized_scan so the IVF
  /// backend scans probed lists over int8 codes by default.
  IvfIndex::Options ivf;

  static RetrievalConfig FromEnv();
};

/// The retrieval surface behind ExampleIndex/DvqIndex: one API over the
/// exact store, the quantized store, and the IVF index, so the embedding
/// libraries pick their backend from configuration instead of code.
///
/// Usage: Add() every library vector, Seal() once, then TopK() freely
/// (TopK is const and thread-safe after Seal). Vectors Added after
/// Seal() remain retrievable immediately — the quantized backend
/// shadows each new row on insert and the IVF backend scans its pending
/// tail exactly until its growth policy triggers a warm-started
/// retrain. Hit indexes are insertion indexes; scores are always exact
/// float-kernel scores (approximate backends re-rank with the exact
/// kernel before returning).
class RetrievalIndex {
 public:
  explicit RetrievalIndex(RetrievalConfig config = {});

  /// Adds a vector (L2-normalized); returns its insertion index.
  std::size_t Add(Vector v);

  /// Finishes the build phase: quantizes any unshadowed rows and/or
  /// trains the IVF lists. Idempotent; must be called before the first
  /// TopK on the IVF backend (an unsealed IVF index has no lists and
  /// returns no hits).
  void Seal();

  /// Top-k most similar stored vectors, best first; exact-kernel scores,
  /// insertion-index tie-break.
  std::vector<Hit> TopK(const Vector& query, std::size_t k) const;

  std::size_t size() const;
  RetrievalBackend backend() const { return config_.backend; }
  const RetrievalConfig& config() const { return config_; }

 private:
  RetrievalConfig config_;
  VectorStore store_;  // exact + quantized backends
  IvfIndex ivf_;       // ivf backend
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_RETRIEVAL_INDEX_H_
