#include "embed/caching_embedder.h"

#include <utility>

#include "util/rng.h"

namespace gred::embed {

CachingEmbedder::CachingEmbedder(std::unique_ptr<TextEmbedder> inner,
                                 std::size_t num_shards)
    : inner_(std::move(inner)),
      shards_(num_shards == 0 ? 1 : num_shards) {}

Vector CachingEmbedder::Embed(const std::string& text) const {
  const std::uint64_t fingerprint = Fnv1a64(text);
  Shard& shard =
      shards_[static_cast<std::size_t>(fingerprint % shards_.size())];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.cache.find(fingerprint);
    if (it != shard.cache.end() && it->second.first == text) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.second;
    }
  }
  // Miss (or fingerprint collision): compute outside the lock so slow
  // embeds never serialize other shard traffic; first insert wins.
  misses_.fetch_add(1, std::memory_order_relaxed);
  Vector v = inner_->Embed(text);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] =
      shard.cache.emplace(fingerprint, std::make_pair(text, v));
  if (!inserted && it->second.first != text) {
    // Genuine 64-bit collision: keep the resident entry, serve this call
    // from the fresh computation.
    return v;
  }
  return it->second.second;
}

CachingEmbedder::Stats CachingEmbedder::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gred::embed
