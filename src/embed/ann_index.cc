#include "embed/ann_index.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace gred::embed {

double IvfIndex::ContractDot(const FlatVectors& rows, std::size_t i,
                             const Vector& q) {
  if (rows.row_size(i) != q.size() || q.empty()) return 0.0;
  return Dot(rows.row(i), q.data(), q.size());
}

IvfIndex::IvfIndex() : IvfIndex(Options()) {}

IvfIndex::IvfIndex(Options options) : options_(options) {}

std::size_t IvfIndex::Add(Vector v) {
  L2Normalize(&v);
  const std::size_t index = vectors_.Append(v);
  if (options_.quantized_scan) {
    codes_.Append(vectors_.row(index), vectors_.row_size(index));
  }
  // Incremental refresh: once the pending tail outgrows the built index
  // by the growth factor, retrain (warm-started) so probe selectivity
  // keeps up with the library. Before the first Build, callers own the
  // Build() timing.
  if (built_ && options_.refresh_growth_factor > 1.0) {
    const double threshold =
        static_cast<double>(std::max<std::size_t>(built_size_, 1)) *
        options_.refresh_growth_factor;
    if (static_cast<double>(vectors_.size()) >= threshold) Build();
  }
  return index;
}

std::size_t IvfIndex::TargetClusters(std::size_t n) const {
  if (options_.num_clusters > 0) {
    return std::min(options_.num_clusters, std::max<std::size_t>(1, n));
  }
  const auto root = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(n))));
  return std::clamp<std::size_t>(root, 1, std::min<std::size_t>(4096, n));
}

void IvfIndex::Build() {
  const std::size_t n = vectors_.size();
  lists_.clear();
  if (n == 0) {
    centroids_ = FlatVectors();
    built_ = true;
    built_size_ = 0;
    return;
  }
  const std::size_t k = TargetClusters(n);

  // Deterministic training sample: k-means iterates over at most
  // train_sample_cap vectors; only the final assignment pass is
  // exhaustive. Seeded by options_.seed XOR the library size so a
  // refresh at a larger n draws a fresh (but reproducible) sample.
  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(n) << 20));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);
  const std::size_t sample_n =
      std::min(n, std::max(options_.train_sample_cap, k));
  // Warm start: keep centroids that already exist (incremental refresh
  // moves them gently); seed any missing ones from the sample.
  if (centroids_.size() > k) centroids_ = FlatVectors();
  for (std::size_t c = centroids_.size(); c < k; ++c) {
    centroids_.Append(vectors_.CopyRow(order[c % n]));
  }

  // Spherical k-means on the sample. Sums run at max_dim (true widest
  // row): a short row's zero padding adds nothing, so mixed-dimension
  // stores stay well-defined, and stride rounding never widens a
  // centroid's true dimension.
  const std::size_t dim = vectors_.max_dim();
  std::vector<std::size_t> sample_assignment(sample_n, 0);
  for (std::size_t iter = 0; iter < options_.kmeans_iterations; ++iter) {
    bool changed = false;
    for (std::size_t s = 0; s < sample_n; ++s) {
      const std::size_t i = order[s];
      const float* vrow = vectors_.row(i);
      const std::size_t vdim = vectors_.row_size(i);
      std::size_t best = 0;
      double best_dot = -2.0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = centroids_.row_size(c) == vdim && vdim > 0
                             ? Dot(centroids_.row(c), vrow, vdim)
                             : 0.0;
        if (d > best_dot) {
          best_dot = d;
          best = c;
        }
      }
      changed = changed || best != sample_assignment[s];
      sample_assignment[s] = best;
    }
    if (!changed && iter > 0) break;
    std::vector<Vector> sums(k, Vector(dim, 0.0f));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t s = 0; s < sample_n; ++s) {
      const float* row = vectors_.row(order[s]);
      Vector& sum = sums[sample_assignment[s]];
      for (std::size_t d = 0; d < dim; ++d) {
        sum[d] += row[d];
      }
      ++counts[sample_assignment[s]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      L2Normalize(&sums[c]);
      centroids_.AssignRow(c, sums[c]);
    }
  }

  // Exhaustive assignment: every vector (sampled or not) joins the list
  // of its most similar centroid.
  lists_.assign(k, {});
  for (std::size_t i = 0; i < n; ++i) {
    const float* vrow = vectors_.row(i);
    const std::size_t vdim = vectors_.row_size(i);
    std::size_t best = 0;
    double best_dot = -2.0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d = centroids_.row_size(c) == vdim && vdim > 0
                           ? Dot(centroids_.row(c), vrow, vdim)
                           : 0.0;
      if (d > best_dot) {
        best_dot = d;
        best = c;
      }
    }
    lists_[best].push_back(i);
  }
  built_ = true;
  built_size_ = n;
}

std::vector<VectorStore::Hit> IvfIndex::TopK(const Vector& query,
                                             std::size_t k) const {
  if (!built_ || vectors_.empty()) return {};
  Vector q = query;
  L2Normalize(&q);
  // Rank centroids; probe the best few. Centroid count is ~sqrt(n), so
  // this stays a float scan regardless of quantized_scan.
  std::vector<VectorStore::Hit> centroid_rank;
  centroid_rank.reserve(centroids_.size());
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    centroid_rank.push_back(VectorStore::Hit{c, ContractDot(centroids_, c, q)});
  }
  const std::size_t probes =
      std::min(options_.num_probes, centroid_rank.size());
  std::partial_sort(centroid_rank.begin(),
                    centroid_rank.begin() + static_cast<long>(probes),
                    centroid_rank.end(),
                    [](const VectorStore::Hit& a, const VectorStore::Hit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.index < b.index;
                    });

  if (options_.quantized_scan && codes_.size() == vectors_.size()) {
    // Approximate pass over probed lists + pending tail, then an exact
    // float re-rank of the widened shortlist (same contract as
    // VectorStore::TopKQuantized).
    const std::size_t shortlist =
        ShortlistSize(std::min(k, vectors_.size()), vectors_.size(),
                      options_.rerank_factor, options_.rerank_slack);
    const QuantizedVectors::Query qq = QuantizedVectors::QuantizeQuery(q);
    TopKSelector approx(shortlist);
    for (std::size_t p = 0; p < probes; ++p) {
      for (std::size_t i : lists_[centroid_rank[p].index]) {
        approx.Offer(i, codes_.ApproxDot(i, qq));
      }
    }
    for (std::size_t i = built_size_; i < vectors_.size(); ++i) {
      approx.Offer(i, codes_.ApproxDot(i, qq));
    }
    TopKSelector exact(std::min(k, vectors_.size()));
    for (const VectorStore::Hit& cand : approx.Take()) {
      exact.Offer(cand.index, ContractDot(vectors_, cand.index, q));
    }
    return exact.Take();
  }

  TopKSelector selector(std::min(k, vectors_.size()));
  for (std::size_t p = 0; p < probes; ++p) {
    for (std::size_t i : lists_[centroid_rank[p].index]) {
      selector.Offer(i, ContractDot(vectors_, i, q));
    }
  }
  // Pending tail (Added after the last Build): scanned exactly, so
  // growth never loses brand-new vectors.
  for (std::size_t i = built_size_; i < vectors_.size(); ++i) {
    selector.Offer(i, ContractDot(vectors_, i, q));
  }
  return selector.Take();
}

}  // namespace gred::embed
