#include "embed/ann_index.h"

#include <algorithm>

#include "util/rng.h"

namespace gred::embed {

namespace {

/// Dot product under the CosineSimilarity contract: mismatched
/// dimensions (or empty vectors) score 0 rather than silently truncating
/// to the shorter vector, which used to rank a wrong-dimension query
/// against the prefix of every stored vector.
double Dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
  }
  return dot;
}

}  // namespace

IvfIndex::IvfIndex() : IvfIndex(Options()) {}

IvfIndex::IvfIndex(Options options) : options_(options) {}

std::size_t IvfIndex::Add(Vector v) {
  L2Normalize(&v);
  vectors_.push_back(std::move(v));
  built_ = false;
  return vectors_.size() - 1;
}

void IvfIndex::Build() {
  const std::size_t n = vectors_.size();
  const std::size_t k = std::min(options_.num_clusters, std::max<std::size_t>(
                                                            1, n));
  centroids_.clear();
  lists_.assign(k, {});
  if (n == 0) {
    built_ = true;
    return;
  }
  // Seed centroids with a deterministic sample.
  Rng rng(options_.seed);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);
  for (std::size_t c = 0; c < k; ++c) {
    centroids_.push_back(vectors_[order[c]]);
  }
  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t iter = 0; iter < options_.kmeans_iterations; ++iter) {
    // Assign each vector to its most similar centroid.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_dot = -2.0;
      for (std::size_t c = 0; c < k; ++c) {
        double d = Dot(vectors_[i], centroids_[c]);
        if (d > best_dot) {
          best_dot = d;
          best = c;
        }
      }
      changed = changed || best != assignment[i];
      assignment[i] = best;
    }
    if (!changed && iter > 0) break;
    // Recompute centroids as normalized means (spherical k-means).
    const std::size_t dim = vectors_[0].size();
    std::vector<Vector> sums(k, Vector(dim, 0.0f));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < dim; ++d) {
        sums[assignment[i]][d] += vectors_[i][d];
      }
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      L2Normalize(&sums[c]);
      centroids_[c] = std::move(sums[c]);
    }
  }
  lists_.assign(k, {});
  for (std::size_t i = 0; i < n; ++i) {
    lists_[assignment[i]].push_back(i);
  }
  built_ = true;
}

std::vector<VectorStore::Hit> IvfIndex::TopK(const Vector& query,
                                             std::size_t k) const {
  std::vector<VectorStore::Hit> hits;
  if (!built_ || vectors_.empty()) return hits;
  Vector q = query;
  L2Normalize(&q);
  // Rank centroids; probe the best few.
  std::vector<VectorStore::Hit> centroid_rank;
  centroid_rank.reserve(centroids_.size());
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    centroid_rank.push_back(VectorStore::Hit{c, Dot(q, centroids_[c])});
  }
  std::size_t probes = std::min(options_.num_probes, centroid_rank.size());
  std::partial_sort(centroid_rank.begin(),
                    centroid_rank.begin() + static_cast<long>(probes),
                    centroid_rank.end(),
                    [](const VectorStore::Hit& a, const VectorStore::Hit& b) {
                      return a.score > b.score;
                    });
  for (std::size_t p = 0; p < probes; ++p) {
    for (std::size_t i : lists_[centroid_rank[p].index]) {
      hits.push_back(VectorStore::Hit{i, Dot(q, vectors_[i])});
    }
  }
  std::size_t keep = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(keep),
                    hits.end(),
                    [](const VectorStore::Hit& a, const VectorStore::Hit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.index < b.index;
                    });
  hits.resize(keep);
  return hits;
}

}  // namespace gred::embed
