#include "embed/ann_index.h"

#include <algorithm>

#include "util/rng.h"

namespace gred::embed {

double IvfIndex::ContractDot(const FlatVectors& rows, std::size_t i,
                             const Vector& q) {
  if (rows.row_size(i) != q.size() || q.empty()) return 0.0;
  return DotBlocked(rows.row(i), q.data(), q.size());
}

IvfIndex::IvfIndex() : IvfIndex(Options()) {}

IvfIndex::IvfIndex(Options options) : options_(options) {}

std::size_t IvfIndex::Add(Vector v) {
  L2Normalize(&v);
  built_ = false;
  return vectors_.Append(v);
}

void IvfIndex::Build() {
  const std::size_t n = vectors_.size();
  const std::size_t k = std::min(options_.num_clusters, std::max<std::size_t>(
                                                            1, n));
  centroids_ = FlatVectors();
  lists_.assign(k, {});
  if (n == 0) {
    built_ = true;
    return;
  }
  // Seed centroids with a deterministic sample.
  Rng rng(options_.seed);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);
  for (std::size_t c = 0; c < k; ++c) {
    centroids_.Append(vectors_.CopyRow(order[c]));
  }
  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t iter = 0; iter < options_.kmeans_iterations; ++iter) {
    // Assign each vector to its most similar centroid.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const float* vrow = vectors_.row(i);
      const std::size_t vdim = vectors_.row_size(i);
      std::size_t best = 0;
      double best_dot = -2.0;
      for (std::size_t c = 0; c < k; ++c) {
        double d = centroids_.row_size(c) == vdim && vdim > 0
                       ? DotBlocked(centroids_.row(c), vrow, vdim)
                       : 0.0;
        if (d > best_dot) {
          best_dot = d;
          best = c;
        }
      }
      changed = changed || best != assignment[i];
      assignment[i] = best;
    }
    if (!changed && iter > 0) break;
    // Recompute centroids as normalized means (spherical k-means). The
    // sums run over the padded stride: a short row's zero padding adds
    // nothing, so mixed-dimension stores stay well-defined.
    const std::size_t dim = vectors_.stride();
    std::vector<Vector> sums(k, Vector(dim, 0.0f));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = vectors_.row(i);
      Vector& sum = sums[assignment[i]];
      for (std::size_t d = 0; d < dim; ++d) {
        sum[d] += row[d];
      }
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      L2Normalize(&sums[c]);
      centroids_.AssignRow(c, sums[c]);
    }
  }
  lists_.assign(k, {});
  for (std::size_t i = 0; i < n; ++i) {
    lists_[assignment[i]].push_back(i);
  }
  built_ = true;
}

std::vector<VectorStore::Hit> IvfIndex::TopK(const Vector& query,
                                             std::size_t k) const {
  if (!built_ || vectors_.empty()) return {};
  Vector q = query;
  L2Normalize(&q);
  // Rank centroids; probe the best few.
  std::vector<VectorStore::Hit> centroid_rank;
  centroid_rank.reserve(centroids_.size());
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    centroid_rank.push_back(VectorStore::Hit{c, ContractDot(centroids_, c, q)});
  }
  std::size_t probes = std::min(options_.num_probes, centroid_rank.size());
  std::partial_sort(centroid_rank.begin(),
                    centroid_rank.begin() + static_cast<long>(probes),
                    centroid_rank.end(),
                    [](const VectorStore::Hit& a, const VectorStore::Hit& b) {
                      return a.score > b.score;
                    });
  TopKSelector selector(std::min(k, vectors_.size()));
  for (std::size_t p = 0; p < probes; ++p) {
    for (std::size_t i : lists_[centroid_rank[p].index]) {
      selector.Offer(i, ContractDot(vectors_, i, q));
    }
  }
  return selector.Take();
}

}  // namespace gred::embed
