#include "embed/kernel.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(GRED_KERNEL_AVX2)
#include <immintrin.h>
#endif
#if defined(GRED_KERNEL_NEON)
#include <arm_neon.h>
#endif

namespace gred::embed {

double DotBlocked(const float* a, const float* b, std::size_t n) {
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<double>(a[i]) * b[i];
    acc1 += static_cast<double>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<double>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  for (; i < n; ++i) {
    acc0 += static_cast<double>(a[i]) * b[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

namespace {

/// Portable SIMD variant: the same four accumulator chains as
/// DotBlocked, with the lane loop annotated `#pragma omp simd` (active
/// under -fopenmp-simd, an ignored pragma otherwise). Each lane's chain
/// performs DotBlocked's exact add sequence, so however the compiler
/// lowers the annotation, the result is bit-identical.
double DotPortableSimd(const float* a, const float* b, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
#pragma omp simd
    for (int lane = 0; lane < 4; ++lane) {
      acc[lane] += static_cast<double>(a[i + static_cast<std::size_t>(lane)]) *
                   b[i + static_cast<std::size_t>(lane)];
    }
  }
  for (; i < n; ++i) {
    acc[0] += static_cast<double>(a[i]) * b[i];
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

std::int64_t DotCodesScalar(const std::uint8_t* a, const std::uint8_t* b,
                            std::size_t n) {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += static_cast<std::int64_t>(a[i]) * b[i];
  }
  return sum;
}

#if defined(GRED_KERNEL_AVX2)

/// AVX2 float dot: DotBlocked's four accumulator chains live in the four
/// lanes of one __m256d. The float->double product is exact (24-bit
/// mantissas multiply into <= 48 bits, double holds 53), so the fused
/// multiply-add performs exactly one rounding — the add — just like
/// DotBlocked's `acc += double(a) * b`. Tail elements fold into lane 0
/// and the reduction is (l0+l1)+(l2+l3): bit-identical by construction.
__attribute__((target("avx2,fma"))) double DotAvx2(const float* a,
                                                   const float* b,
                                                   std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Two sequenced fmadds into the same accumulator: lane j still sums
    // elements j, j+4, j+8, ... in DotBlocked's order.
    acc = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                          _mm256_cvtps_pd(_mm_loadu_ps(b + i)), acc);
    acc = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i + 4)),
                          _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4)), acc);
  }
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                          _mm256_cvtps_pd(_mm_loadu_ps(b + i)), acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < n; ++i) {
    lane[0] += static_cast<double>(a[i]) * b[i];
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

/// AVX2 code dot: 16 uint8 codes widen to int16, _mm256_madd_epi16
/// multiply-accumulates adjacent pairs into int32 lanes. Each step adds
/// at most 2*255*255 per lane, so kMaxCodeDot rows cannot overflow the
/// lanes; the final reduction widens to int64. Exact integer arithmetic:
/// bit-identical to the scalar loop for free.
__attribute__((target("avx2"))) std::int64_t DotCodesAvx2(
    const std::uint8_t* a, const std::uint8_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  alignas(32) std::int32_t lane[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), acc);
  std::int64_t sum = 0;
  for (std::int32_t l : lane) sum += l;
  for (; i < n; ++i) {
    sum += static_cast<std::int64_t>(a[i]) * b[i];
  }
  return sum;
}

bool Avx2Supported() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // GRED_KERNEL_AVX2

#if defined(GRED_KERNEL_NEON)

/// NEON float dot: DotBlocked's four chains live in two float64x2
/// accumulators (lanes 0-1 and 2-3). vfmaq_f64 fuses the exact
/// float->double product with the add, one rounding per element, same
/// as the scalar chains; tail folds into lane 0, reduction is
/// (l0+l1)+(l2+l3).
double DotNeon(const float* a, const float* b, std::size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t va = vld1q_f32(a + i);
    const float32x4_t vb = vld1q_f32(b + i);
    acc01 = vfmaq_f64(acc01, vcvt_f64_f32(vget_low_f32(va)),
                      vcvt_f64_f32(vget_low_f32(vb)));
    acc23 = vfmaq_f64(acc23, vcvt_f64_f32(vget_high_f32(va)),
                      vcvt_f64_f32(vget_high_f32(vb)));
  }
  double l0 = vgetq_lane_f64(acc01, 0);
  const double l1 = vgetq_lane_f64(acc01, 1);
  const double l2 = vgetq_lane_f64(acc23, 0);
  const double l3 = vgetq_lane_f64(acc23, 1);
  for (; i < n; ++i) {
    l0 += static_cast<double>(a[i]) * b[i];
  }
  return (l0 + l1) + (l2 + l3);
}

/// NEON code dot: 16 uint8 codes per step through the widening
/// multiply-accumulate; exact integer arithmetic.
std::int64_t DotCodesNeon(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t n) {
  uint32x4_t acc = vdupq_n_u32(0);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t va = vld1q_u8(a + i);
    const uint8x16_t vb = vld1q_u8(b + i);
    const uint16x8_t lo = vmull_u8(vget_low_u8(va), vget_low_u8(vb));
    const uint16x8_t hi = vmull_u8(vget_high_u8(va), vget_high_u8(vb));
    acc = vpadalq_u16(acc, lo);
    acc = vpadalq_u16(acc, hi);
  }
  std::int64_t sum = static_cast<std::int64_t>(vaddvq_u32(acc));
  for (; i < n; ++i) {
    sum += static_cast<std::int64_t>(a[i]) * b[i];
  }
  return sum;
}

#endif  // GRED_KERNEL_NEON

/// Resolves GRED_DOT_TARGET (or picks the fastest supported target) once.
/// Exits(2) on an unknown name or a target this binary/CPU cannot run —
/// a mistyped override must not silently fall back to a different kernel
/// and invalidate a benchmark run.
DotTarget ResolveActiveTarget() {
  const std::vector<DotTarget> supported = SupportedDotTargets();
  const char* env = std::getenv("GRED_DOT_TARGET");
  if (env != nullptr && *env != '\0') {
    for (DotTarget t : supported) {
      if (std::strcmp(env, DotTargetName(t)) == 0) return t;
    }
    std::fprintf(stderr,
                 "GRED_DOT_TARGET=%s is not a supported dot kernel target "
                 "(supported:",
                 env);
    for (DotTarget t : supported) {
      std::fprintf(stderr, " %s", DotTargetName(t));
    }
    std::fprintf(stderr, ")\n");
    std::exit(2);
  }
  // Preference order: vector ISAs, then the portable variant (it at
  // least permits compiler vectorization), then scalar.
  for (DotTarget want : {DotTarget::kAvx2, DotTarget::kNeon,
                         DotTarget::kPortable, DotTarget::kScalar}) {
    for (DotTarget t : supported) {
      if (t == want) return t;
    }
  }
  return DotTarget::kScalar;  // unreachable: kScalar is always supported
}

DotTarget ActiveTargetOnce() {
  static const DotTarget kActive = ResolveActiveTarget();
  return kActive;
}

}  // namespace

const char* DotTargetName(DotTarget target) {
  switch (target) {
    case DotTarget::kScalar:
      return "scalar";
    case DotTarget::kPortable:
      return "portable";
    case DotTarget::kAvx2:
      return "avx2";
    case DotTarget::kNeon:
      return "neon";
  }
  return "unknown";
}

std::vector<DotTarget> SupportedDotTargets() {
  std::vector<DotTarget> targets{DotTarget::kScalar, DotTarget::kPortable};
#if defined(GRED_KERNEL_AVX2)
  if (Avx2Supported()) targets.push_back(DotTarget::kAvx2);
#endif
#if defined(GRED_KERNEL_NEON)
  targets.push_back(DotTarget::kNeon);
#endif
  return targets;
}

DotTarget ActiveDotTarget() { return ActiveTargetOnce(); }

double DotWithTarget(DotTarget target, const float* a, const float* b,
                     std::size_t n) {
  switch (target) {
    case DotTarget::kScalar:
      return DotBlocked(a, b, n);
    case DotTarget::kPortable:
      return DotPortableSimd(a, b, n);
#if defined(GRED_KERNEL_AVX2)
    case DotTarget::kAvx2:
      return DotAvx2(a, b, n);
#endif
#if defined(GRED_KERNEL_NEON)
    case DotTarget::kNeon:
      return DotNeon(a, b, n);
#endif
    default:
      return DotBlocked(a, b, n);
  }
}

double Dot(const float* a, const float* b, std::size_t n) {
  return DotWithTarget(ActiveTargetOnce(), a, b, n);
}

std::int64_t DotCodesWithTarget(DotTarget target, const std::uint8_t* a,
                                const std::uint8_t* b, std::size_t n) {
  switch (target) {
#if defined(GRED_KERNEL_AVX2)
    case DotTarget::kAvx2:
      return DotCodesAvx2(a, b, n);
#endif
#if defined(GRED_KERNEL_NEON)
    case DotTarget::kNeon:
      return DotCodesNeon(a, b, n);
#endif
    default:
      return DotCodesScalar(a, b, n);
  }
}

std::int64_t DotCodes(const std::uint8_t* a, const std::uint8_t* b,
                      std::size_t n) {
  return DotCodesWithTarget(ActiveTargetOnce(), a, b, n);
}

}  // namespace gred::embed
