#include "embed/kernel.h"

namespace gred::embed {

double DotBlocked(const float* a, const float* b, std::size_t n) {
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<double>(a[i]) * b[i];
    acc1 += static_cast<double>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<double>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  for (; i < n; ++i) {
    acc0 += static_cast<double>(a[i]) * b[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

}  // namespace gred::embed
