#ifndef GREDVIS_EMBED_VECTOR_STORE_H_
#define GREDVIS_EMBED_VECTOR_STORE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "embed/flat_vectors.h"
#include "embed/kernel.h"
#include "embed/quantized_vectors.h"

namespace gred::embed {

/// An exact top-K cosine-similarity index over embedding vectors.
///
/// This is the "embedding vector library" of GRED's preparatory phase:
/// the NLQs and DVQs of the training split are embedded and stored here,
/// then retrieved by cosine similarity at generation/retune time.
/// Vectors are L2-normalized on insert so similarity is a dot product.
///
/// Storage is a flat SoA buffer (FlatVectors) scanned with the
/// dispatching SIMD kernel; top-k selection is a bounded heap, so a
/// query allocates O(k) rather than O(n). A query whose dimension
/// differs from a stored vector's scores 0 against it (the
/// CosineSimilarity contract) instead of being dotted against the
/// vector's prefix.
///
/// Beyond the exact scan, the store can shadow its rows with int8
/// scalar-quantized codes (EnsureQuantized) and answer TopKQuantized: an
/// approximate 1-byte-per-dimension scan selects a widened shortlist,
/// which is then re-ranked with the exact float kernel. Whenever the
/// true top-k all land in the shortlist — overwhelmingly the common case
/// at the default widening — the returned hits are bit-identical to
/// TopK: same indexes, same order, same float-kernel scores.
class VectorStore {
 public:
  using Hit = embed::Hit;

  /// Adds a vector; returns its insertion index. New rows are not
  /// quantized until the next EnsureQuantized().
  std::size_t Add(Vector v);

  /// Exact top-`k` by cosine similarity, highest first. Ties break by
  /// lower insertion index (deterministic).
  std::vector<Hit> TopK(const Vector& query, std::size_t k) const;

  /// Batched top-`k`: one pass over the store amortized across all
  /// queries (each block of rows is scored against every query while hot
  /// in cache). Result `i` is bit-identical to `TopK(queries[i], k)`.
  std::vector<std::vector<Hit>> TopKBatch(std::span<const Vector> queries,
                                          std::size_t k) const;

  /// Quantizes rows appended since the last call (all rows on the first
  /// call). Not thread-safe against concurrent queries; call it after
  /// the build phase, before serving (RetrievalIndex::Seal does).
  void EnsureQuantized();

  /// Approximate scan over the int8 codes selecting a `shortlist`-sized
  /// candidate set, then an exact float re-rank of the shortlist down to
  /// `k`. Requires EnsureQuantized() to have covered every row.
  /// `shortlist` is clamped to [k, size()]. Returned scores are exact
  /// (float-kernel) scores; order matches TopK whenever the shortlist
  /// contains the true top-k.
  std::vector<Hit> TopKQuantized(const Vector& query, std::size_t k,
                                 std::size_t shortlist) const;

  /// Whether the quantized shadow covers every row.
  bool quantized() const { return codes_.size() == rows_.size(); }

  std::size_t size() const { return rows_.size(); }

  /// Copy of the stored (normalized) vector at `index`.
  Vector at(std::size_t index) const { return rows_.CopyRow(index); }

  /// The underlying SoA rows (IvfIndex and benchmarks read them).
  const FlatVectors& rows() const { return rows_; }

 private:
  FlatVectors rows_;
  QuantizedVectors codes_;
};

/// Shortlist width for a quantized or IVF search: `k` widened by
/// `factor` plus `slack` fixed extra candidates, clamped to the library
/// size. The slack floor keeps small-k searches honest (k=1 with only
/// 4 candidates would make re-rank exactness a coin flip); the factor
/// keeps large-k searches proportionally covered.
std::size_t ShortlistSize(std::size_t k, std::size_t n, std::size_t factor,
                          std::size_t slack);

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_VECTOR_STORE_H_
