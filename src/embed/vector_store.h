#ifndef GREDVIS_EMBED_VECTOR_STORE_H_
#define GREDVIS_EMBED_VECTOR_STORE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "embed/flat_vectors.h"
#include "embed/kernel.h"

namespace gred::embed {

/// An exact top-K cosine-similarity index over embedding vectors.
///
/// This is the "embedding vector library" of GRED's preparatory phase:
/// the NLQs and DVQs of the training split are embedded and stored here,
/// then retrieved by cosine similarity at generation/retune time.
/// Vectors are L2-normalized on insert so similarity is a dot product.
///
/// Storage is a flat SoA buffer (FlatVectors) scanned with the blocked
/// kernel; top-k selection is a bounded heap, so a query allocates O(k)
/// rather than O(n). A query whose dimension differs from a stored
/// vector's scores 0 against it (the CosineSimilarity contract) instead
/// of being dotted against the vector's prefix.
class VectorStore {
 public:
  using Hit = embed::Hit;

  /// Adds a vector; returns its insertion index.
  std::size_t Add(Vector v);

  /// Exact top-`k` by cosine similarity, highest first. Ties break by
  /// lower insertion index (deterministic).
  std::vector<Hit> TopK(const Vector& query, std::size_t k) const;

  /// Batched top-`k`: one pass over the store amortized across all
  /// queries (each block of rows is scored against every query while hot
  /// in cache). Result `i` is bit-identical to `TopK(queries[i], k)`.
  std::vector<std::vector<Hit>> TopKBatch(std::span<const Vector> queries,
                                          std::size_t k) const;

  std::size_t size() const { return rows_.size(); }

  /// Copy of the stored (normalized) vector at `index`.
  Vector at(std::size_t index) const { return rows_.CopyRow(index); }

 private:
  FlatVectors rows_;
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_VECTOR_STORE_H_
