#ifndef GREDVIS_EMBED_VECTOR_STORE_H_
#define GREDVIS_EMBED_VECTOR_STORE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "embed/embedder.h"

namespace gred::embed {

/// An exact top-K cosine-similarity index over embedding vectors.
///
/// This is the "embedding vector library" of GRED's preparatory phase:
/// the NLQs and DVQs of the training split are embedded and stored here,
/// then retrieved by cosine similarity at generation/retune time.
/// Vectors are L2-normalized on insert so similarity is a dot product.
class VectorStore {
 public:
  struct Hit {
    std::size_t index = 0;  // insertion index (payload handle)
    double score = 0.0;     // cosine similarity
  };

  /// Adds a vector; returns its insertion index.
  std::size_t Add(Vector v);

  /// Exact top-`k` by cosine similarity, highest first. Ties break by
  /// lower insertion index (deterministic).
  std::vector<Hit> TopK(const Vector& query, std::size_t k) const;

  std::size_t size() const { return vectors_.size(); }
  const Vector& at(std::size_t index) const { return vectors_[index]; }

 private:
  std::vector<Vector> vectors_;
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_VECTOR_STORE_H_
