#ifndef GREDVIS_EMBED_EMBEDDER_H_
#define GREDVIS_EMBED_EMBEDDER_H_

#include <string>
#include <vector>

#include "nl/lexicon.h"

namespace gred::embed {

/// Dense embedding vector (L2-normalized by the embedders).
using Vector = std::vector<float>;

/// Cosine similarity; returns 0 for zero vectors or dimension mismatch.
double CosineSimilarity(const Vector& a, const Vector& b);

/// Normalizes `v` to unit length in place (no-op on the zero vector).
void L2Normalize(Vector* v);

/// Interface for text embedding models.
///
/// Stands in for OpenAI's `text-embedding-3-large` in the paper's
/// preparatory phase (Section 4.1). Implementations must be deterministic.
class TextEmbedder {
 public:
  virtual ~TextEmbedder() = default;

  /// Embeds `text` into a unit-length vector of `dimension()` floats.
  virtual Vector Embed(const std::string& text) const = 0;

  virtual std::size_t dimension() const = 0;
};

/// Configuration for the hash embedders.
struct EmbedderOptions {
  std::size_t dimension = 512;
  /// Weight of stemmed-token features.
  double token_weight = 1.0;
  /// Weight of concept-id features (semantic folding). Zero disables
  /// concept knowledge, turning the model into a purely lexical embedder.
  double concept_weight = 1.6;
  /// Weight of character-trigram features (robustness to morphology
  /// and identifier-style tokens).
  double trigram_weight = 0.3;
};

/// Concept-aware hashed bag-of-features embedder.
///
/// Features: (a) stemmed content tokens, (b) the lexicon concept id of
/// every known token — this is what places "wage" next to "salary", the
/// property the paper gets from the pretrained embedding model — and
/// (c) character trigrams. Each feature is FNV-hashed into one of
/// `dimension` buckets with a sign derived from the hash (feature
/// hashing), then the vector is L2-normalized.
class SemanticHashEmbedder : public TextEmbedder {
 public:
  SemanticHashEmbedder(const nl::Lexicon* lexicon, EmbedderOptions options);

  /// Embedder with the default lexicon and options.
  SemanticHashEmbedder();

  Vector Embed(const std::string& text) const override;
  std::size_t dimension() const override { return options_.dimension; }

 private:
  const nl::Lexicon* lexicon_;  // not owned
  EmbedderOptions options_;
};

/// Purely lexical variant (concept weight zero): what a model without
/// pretrained semantic knowledge "sees". Used by the RGVisNet baseline's
/// prototype retrieval.
class LexicalHashEmbedder : public TextEmbedder {
 public:
  explicit LexicalHashEmbedder(EmbedderOptions options = {});

  Vector Embed(const std::string& text) const override;
  std::size_t dimension() const override { return impl_.dimension(); }

 private:
  SemanticHashEmbedder impl_;
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_EMBEDDER_H_
