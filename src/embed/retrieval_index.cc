#include "embed/retrieval_index.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gred::embed {

namespace {

/// Strict env integer: unset returns `fallback`; anything that does not
/// parse as a non-negative integer exits(2). Mirrors the bench layer's
/// EnvSizeOrDie, which lives above this library.
std::size_t EnvSizeOrDie(const char* name, std::size_t fallback,
                         bool allow_zero) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  const bool bad_zero = !allow_zero && parsed == 0;
  if (end == value || *end != '\0' || bad_zero ||
      std::strchr(value, '-') != nullptr) {
    std::fprintf(stderr, "%s=%s is not a valid %spositive integer\n", name,
                 value, allow_zero ? "zero-or-" : "strictly ");
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

const char* RetrievalBackendName(RetrievalBackend backend) {
  switch (backend) {
    case RetrievalBackend::kExact:
      return "exact";
    case RetrievalBackend::kQuantized:
      return "quantized";
    case RetrievalBackend::kIvf:
      return "ivf";
  }
  return "unknown";
}

RetrievalConfig RetrievalConfig::FromEnv() {
  RetrievalConfig config;
  const char* backend = std::getenv("GRED_RETRIEVAL_BACKEND");
  if (backend != nullptr && *backend != '\0') {
    if (std::strcmp(backend, "exact") == 0) {
      config.backend = RetrievalBackend::kExact;
    } else if (std::strcmp(backend, "quantized") == 0) {
      config.backend = RetrievalBackend::kQuantized;
    } else if (std::strcmp(backend, "ivf") == 0) {
      config.backend = RetrievalBackend::kIvf;
    } else {
      std::fprintf(stderr,
                   "GRED_RETRIEVAL_BACKEND=%s is not a retrieval backend "
                   "(exact, quantized, ivf)\n",
                   backend);
      std::exit(2);
    }
  }
  config.rerank_factor = EnvSizeOrDie("GRED_RETRIEVAL_RERANK", 4, false);
  config.ivf.num_probes = EnvSizeOrDie("GRED_RETRIEVAL_PROBES", 8, false);
  config.ivf.num_clusters =
      EnvSizeOrDie("GRED_RETRIEVAL_CLUSTERS", 0, true);  // 0 = auto sqrt(n)
  // The env-configured IVF backend is the production shape: int8 list
  // scans with an exact re-rank sharing the quantized backend's widening.
  config.ivf.quantized_scan = true;
  config.ivf.rerank_factor = config.rerank_factor;
  config.ivf.rerank_slack = config.rerank_slack;
  return config;
}

RetrievalIndex::RetrievalIndex(RetrievalConfig config)
    : config_(config), ivf_(config.ivf) {}

std::size_t RetrievalIndex::Add(Vector v) {
  if (config_.backend == RetrievalBackend::kIvf) {
    return ivf_.Add(std::move(v));
  }
  const std::size_t index = store_.Add(std::move(v));
  if (config_.backend == RetrievalBackend::kQuantized) {
    // Shadow the new row immediately: quantization is O(dim) per row and
    // keeping the codes in lockstep makes TopK valid at any point.
    store_.EnsureQuantized();
  }
  return index;
}

void RetrievalIndex::Seal() {
  switch (config_.backend) {
    case RetrievalBackend::kExact:
      break;
    case RetrievalBackend::kQuantized:
      store_.EnsureQuantized();
      break;
    case RetrievalBackend::kIvf:
      ivf_.Build();
      break;
  }
}

std::vector<Hit> RetrievalIndex::TopK(const Vector& query,
                                      std::size_t k) const {
  switch (config_.backend) {
    case RetrievalBackend::kQuantized:
      return store_.TopKQuantized(
          query, k,
          ShortlistSize(k, store_.size(), config_.rerank_factor,
                        config_.rerank_slack));
    case RetrievalBackend::kIvf:
      return ivf_.TopK(query, k);
    case RetrievalBackend::kExact:
      break;
  }
  return store_.TopK(query, k);
}

std::size_t RetrievalIndex::size() const {
  return config_.backend == RetrievalBackend::kIvf ? ivf_.size()
                                                   : store_.size();
}

}  // namespace gred::embed
