#include "embed/vector_store.h"

#include <algorithm>

namespace gred::embed {

std::size_t VectorStore::Add(Vector v) {
  L2Normalize(&v);
  vectors_.push_back(std::move(v));
  return vectors_.size() - 1;
}

std::vector<VectorStore::Hit> VectorStore::TopK(const Vector& query,
                                                std::size_t k) const {
  Vector q = query;
  L2Normalize(&q);
  std::vector<Hit> hits;
  hits.reserve(vectors_.size());
  for (std::size_t i = 0; i < vectors_.size(); ++i) {
    const Vector& v = vectors_[i];
    double dot = 0.0;
    const std::size_t n = std::min(v.size(), q.size());
    for (std::size_t d = 0; d < n; ++d) {
      dot += static_cast<double>(v[d]) * q[d];
    }
    hits.push_back(Hit{i, dot});
  }
  std::size_t keep = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(keep),
                    hits.end(), [](const Hit& a, const Hit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.index < b.index;
                    });
  hits.resize(keep);
  return hits;
}

}  // namespace gred::embed
