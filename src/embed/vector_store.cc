#include "embed/vector_store.h"

#include <algorithm>
#include <cassert>

namespace gred::embed {

namespace {

/// Rows per block in the batched scan: 64 rows x 512 floats x 4 bytes =
/// 128 KiB, comfortably L2-resident while every query revisits the block.
constexpr std::size_t kBatchBlockRows = 64;

}  // namespace

std::size_t ShortlistSize(std::size_t k, std::size_t n, std::size_t factor,
                          std::size_t slack) {
  const std::size_t widened = std::max(k * factor, k + slack);
  return std::min(std::max(widened, k), n);
}

std::size_t VectorStore::Add(Vector v) {
  L2Normalize(&v);
  return rows_.Append(v);
}

std::vector<VectorStore::Hit> VectorStore::TopK(const Vector& query,
                                                std::size_t k) const {
  Vector q = query;
  L2Normalize(&q);
  TopKSelector selector(std::min(k, rows_.size()));
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const double score = rows_.row_size(i) == q.size() && !q.empty()
                             ? Dot(rows_.row(i), q.data(), q.size())
                             : 0.0;
    selector.Offer(i, score);
  }
  return selector.Take();
}

std::vector<std::vector<VectorStore::Hit>> VectorStore::TopKBatch(
    std::span<const Vector> queries, std::size_t k) const {
  std::vector<Vector> normalized(queries.begin(), queries.end());
  for (Vector& q : normalized) L2Normalize(&q);
  std::vector<TopKSelector> selectors;
  selectors.reserve(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    selectors.emplace_back(std::min(k, rows_.size()));
  }
  for (std::size_t base = 0; base < rows_.size(); base += kBatchBlockRows) {
    const std::size_t end = std::min(base + kBatchBlockRows, rows_.size());
    for (std::size_t qi = 0; qi < normalized.size(); ++qi) {
      const Vector& q = normalized[qi];
      for (std::size_t i = base; i < end; ++i) {
        const double score = rows_.row_size(i) == q.size() && !q.empty()
                                 ? Dot(rows_.row(i), q.data(), q.size())
                                 : 0.0;
        selectors[qi].Offer(i, score);
      }
    }
  }
  std::vector<std::vector<Hit>> out;
  out.reserve(selectors.size());
  for (TopKSelector& selector : selectors) out.push_back(selector.Take());
  return out;
}

void VectorStore::EnsureQuantized() {
  codes_.AppendRows(rows_, codes_.size());
}

std::vector<VectorStore::Hit> VectorStore::TopKQuantized(
    const Vector& query, std::size_t k, std::size_t shortlist) const {
  assert(quantized() && "EnsureQuantized() must cover every row");
  Vector q = query;
  L2Normalize(&q);
  const QuantizedVectors::Query qq = QuantizedVectors::QuantizeQuery(q);
  // Approximate pass: 1 byte per dimension, exact integer kernel.
  TopKSelector approx(std::min(std::max(shortlist, k), rows_.size()));
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    approx.Offer(i, codes_.ApproxDot(i, qq));
  }
  // Exact re-rank of the shortlist with the float kernel: the returned
  // scores carry no quantization error, so whenever the true top-k all
  // made the shortlist the result is bit-identical to TopK.
  TopKSelector exact(std::min(k, rows_.size()));
  for (const Hit& candidate : approx.Take()) {
    const std::size_t i = candidate.index;
    const double score = rows_.row_size(i) == q.size() && !q.empty()
                             ? Dot(rows_.row(i), q.data(), q.size())
                             : 0.0;
    exact.Offer(i, score);
  }
  return exact.Take();
}

}  // namespace gred::embed
