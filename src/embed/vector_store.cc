#include "embed/vector_store.h"

#include <algorithm>

namespace gred::embed {

namespace {

/// Rows per block in the batched scan: 64 rows x 512 floats x 4 bytes =
/// 128 KiB, comfortably L2-resident while every query revisits the block.
constexpr std::size_t kBatchBlockRows = 64;

}  // namespace

std::size_t VectorStore::Add(Vector v) {
  L2Normalize(&v);
  return rows_.Append(v);
}

std::vector<VectorStore::Hit> VectorStore::TopK(const Vector& query,
                                                std::size_t k) const {
  Vector q = query;
  L2Normalize(&q);
  TopKSelector selector(std::min(k, rows_.size()));
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const double score = rows_.row_size(i) == q.size() && !q.empty()
                             ? DotBlocked(rows_.row(i), q.data(), q.size())
                             : 0.0;
    selector.Offer(i, score);
  }
  return selector.Take();
}

std::vector<std::vector<VectorStore::Hit>> VectorStore::TopKBatch(
    std::span<const Vector> queries, std::size_t k) const {
  std::vector<Vector> normalized(queries.begin(), queries.end());
  for (Vector& q : normalized) L2Normalize(&q);
  std::vector<TopKSelector> selectors;
  selectors.reserve(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    selectors.emplace_back(std::min(k, rows_.size()));
  }
  for (std::size_t base = 0; base < rows_.size(); base += kBatchBlockRows) {
    const std::size_t end = std::min(base + kBatchBlockRows, rows_.size());
    for (std::size_t qi = 0; qi < normalized.size(); ++qi) {
      const Vector& q = normalized[qi];
      for (std::size_t i = base; i < end; ++i) {
        const double score =
            rows_.row_size(i) == q.size() && !q.empty()
                ? DotBlocked(rows_.row(i), q.data(), q.size())
                : 0.0;
        selectors[qi].Offer(i, score);
      }
    }
  }
  std::vector<std::vector<Hit>> out;
  out.reserve(selectors.size());
  for (TopKSelector& selector : selectors) out.push_back(selector.Take());
  return out;
}

}  // namespace gred::embed
