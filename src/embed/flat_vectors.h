#ifndef GREDVIS_EMBED_FLAT_VECTORS_H_
#define GREDVIS_EMBED_FLAT_VECTORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "embed/aligned_buffer.h"
#include "embed/embedder.h"

namespace gred::embed {

/// Structure-of-arrays embedding storage: all rows live in one contiguous
/// float buffer at a fixed stride, so a retrieval scan walks memory
/// linearly instead of chasing one heap allocation per vector (the seed's
/// `std::vector<Vector>` layout).
///
/// The buffer base is kRowAlignBytes (32-byte) aligned and the stride is
/// the largest row dimension seen so far rounded up to kRowAlignFloats,
/// so *every* row starts on a 32-byte boundary — the SIMD dot kernel
/// never takes an unaligned path at a row head. Shorter rows are
/// zero-padded (padding never changes a dot product). Appending a row
/// wider than the current stride re-packs the buffer — O(n·stride), and
/// only mixed-dimension stores (tests, never the embedders, which emit a
/// fixed dimension) pay it. Each row's true dimension is kept so scoring
/// can enforce the CosineSimilarity contract: a query whose dimension
/// differs from a row's scores exactly 0 against it.
class FlatVectors {
 public:
  /// Floats per alignment unit; the stride invariant below.
  static constexpr std::size_t kRowAlignFloats =
      kRowAlignBytes / sizeof(float);
  static_assert(kRowAlignFloats * sizeof(float) == kRowAlignBytes,
                "float size must divide the row alignment");
  static_assert(kRowAlignBytes % alignof(float) == 0,
                "row alignment must satisfy float alignment");

  /// Appends a row (copied); returns its index.
  std::size_t Append(const Vector& v);

  /// Pointer to row `i`'s floats (stride() of them, zero-padded).
  /// 32-byte aligned by the stride invariant.
  const float* row(std::size_t i) const { return data_.data() + i * stride_; }

  /// The dimension row `i` was appended with (before padding).
  std::size_t row_size(std::size_t i) const { return sizes_[i]; }

  /// Copies row `i` back out at its original dimension.
  Vector CopyRow(std::size_t i) const;

  /// Overwrites row `i` with `v` (v.size() must not exceed stride());
  /// the rest of the row is zero-padded and the row's dimension becomes
  /// v.size(). Used by IvfIndex's k-means to update centroids in place.
  void AssignRow(std::size_t i, const Vector& v);

  std::size_t size() const { return sizes_.size(); }

  /// Floats between consecutive row heads; always a multiple of
  /// kRowAlignFloats and at least max_dim().
  std::size_t stride() const { return stride_; }

  /// Largest true row dimension appended so far (the pre-rounding
  /// stride). IvfIndex's k-means accumulates centroid sums at this
  /// width, so stride rounding never leaks into centroid dimensions.
  std::size_t max_dim() const { return max_dim_; }

  bool empty() const { return sizes_.empty(); }

 private:
  std::vector<float, AlignedAllocator<float>> data_;  // size() * stride_
  std::vector<std::uint32_t> sizes_;  // original dimension per row
  std::size_t stride_ = 0;
  std::size_t max_dim_ = 0;
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_FLAT_VECTORS_H_
