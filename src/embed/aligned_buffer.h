#ifndef GREDVIS_EMBED_ALIGNED_BUFFER_H_
#define GREDVIS_EMBED_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>
#include <new>

namespace gred::embed {

/// Row alignment of every SoA retrieval buffer: one AVX2 register.
/// FlatVectors rounds its float stride and QuantizedVectors its code
/// stride up to this many bytes, so with an aligned base every row
/// starts on a 32-byte boundary and the SIMD kernels never straddle a
/// cache line at a row head.
inline constexpr std::size_t kRowAlignBytes = 32;

/// Minimal std::vector-compatible allocator returning kRowAlignBytes-
/// aligned storage (operator new with align_val_t, so ASan still sees
/// every allocation). value-initialization semantics are unchanged —
/// the vector still zero-fills on resize, which FlatVectors relies on
/// for its padding contract.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  explicit constexpr AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kRowAlignBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kRowAlignBytes});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Rounds a row dimension up to the stride that keeps consecutive rows
/// kRowAlignBytes-aligned. `element_size` must divide kRowAlignBytes.
constexpr std::size_t AlignedStride(std::size_t dim,
                                    std::size_t element_size) {
  const std::size_t elems = kRowAlignBytes / element_size;
  return (dim + elems - 1) / elems * elems;
}

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_ALIGNED_BUFFER_H_
