#include "embed/flat_vectors.h"

#include <algorithm>

namespace gred::embed {

std::size_t FlatVectors::Append(const Vector& v) {
  max_dim_ = std::max(max_dim_, v.size());
  if (v.size() > stride_) {
    const std::size_t new_stride = AlignedStride(v.size(), sizeof(float));
    // Re-pack existing rows at the wider stride (rare: only stores mixing
    // dimensions ever grow the stride after the first append).
    std::vector<float, AlignedAllocator<float>> wider(
        sizes_.size() * new_stride, 0.0f);
    for (std::size_t i = 0; i < sizes_.size(); ++i) {
      std::copy_n(data_.data() + i * stride_, stride_,
                  wider.data() + i * new_stride);
    }
    data_ = std::move(wider);
    stride_ = new_stride;
  }
  const std::size_t index = sizes_.size();
  sizes_.push_back(static_cast<std::uint32_t>(v.size()));
  data_.resize(data_.size() + stride_, 0.0f);
  std::copy(v.begin(), v.end(), data_.data() + index * stride_);
  return index;
}

Vector FlatVectors::CopyRow(std::size_t i) const {
  const float* r = row(i);
  return Vector(r, r + sizes_[i]);
}

void FlatVectors::AssignRow(std::size_t i, const Vector& v) {
  float* r = data_.data() + i * stride_;
  std::copy(v.begin(), v.end(), r);
  std::fill(r + v.size(), r + stride_, 0.0f);
  sizes_[i] = static_cast<std::uint32_t>(v.size());
  max_dim_ = std::max(max_dim_, v.size());
}

}  // namespace gred::embed
