#ifndef GREDVIS_EMBED_ANN_INDEX_H_
#define GREDVIS_EMBED_ANN_INDEX_H_

#include <cstdint>
#include <vector>

#include "embed/flat_vectors.h"
#include "embed/kernel.h"
#include "embed/quantized_vectors.h"
#include "embed/vector_store.h"

namespace gred::embed {

/// Inverted-file (IVF-flat) approximate nearest-neighbour index with
/// multi-probe search, optional int8-quantized list scans, and
/// incremental training refresh.
///
/// The brute-force VectorStore is exact and fast enough for nvBench-scale
/// libraries (a few thousand vectors); this index exists for 10^5-10^6
/// entry libraries: vectors are k-means-clustered and a query scans only
/// the `num_probes` most similar clusters. Deterministic throughout
/// (seeded sampling, fixed iteration count, insertion-index tie-breaks).
///
/// Scale machinery on top of the PR 3 version:
///  - cluster count defaults to ~sqrt(n) (num_clusters = 0) so probe
///    cost and list length stay balanced as the library grows;
///  - k-means trains on a deterministic sample (train_sample_cap) and
///    only the final assignment pass touches every vector, keeping
///    Build roughly O(n * sqrt(n_sample)) instead of O(n * k * iters);
///  - Build() warm-starts from the previous centroids when called again
///    (incremental training refresh), so a refresh moves centroids
///    gently instead of re-clustering from scratch;
///  - vectors Added after Build() join an unindexed pending tail that
///    TopK scans exhaustively (exact), so the index never returns wrong
///    answers while the library grows; once the library outgrows
///    refresh_growth_factor * built_size, the next Add triggers an
///    automatic warm-started Build;
///  - with quantized_scan, probed lists and the pending tail are scanned
///    over int8 codes (QuantizedVectors) into a widened shortlist that
///    is re-ranked with the exact float kernel — the scores returned are
///    always exact-kernel scores.
///
/// Vectors and centroids share VectorStore's 32-byte-aligned flat SoA
/// layout and the dispatching SIMD dot kernel, and candidates feed a
/// bounded top-k heap, so a query allocates O(k + shortlist) hits rather
/// than materializing every probed member.
class IvfIndex {
 public:
  struct Options {
    /// Target cluster count; 0 = auto (~sqrt(n), clamped to [1, 4096]).
    std::size_t num_clusters = 16;
    std::size_t num_probes = 4;
    std::size_t kmeans_iterations = 8;
    std::uint64_t seed = 42;
    /// Training-sample ceiling for k-means: past this many vectors,
    /// centroid updates train on a deterministic sample and only the
    /// final assignment pass is exhaustive.
    std::size_t train_sample_cap = 8192;
    /// Automatic refresh: when an Add grows the library past
    /// refresh_growth_factor * built_size, Build() reruns (warm-started).
    /// Values <= 1 disable automatic refresh.
    double refresh_growth_factor = 1.5;
    /// Scan probed lists over int8 codes and re-rank a widened
    /// shortlist with the exact float kernel (see ShortlistSize).
    bool quantized_scan = false;
    std::size_t rerank_factor = 4;
    std::size_t rerank_slack = 32;
  };

  IvfIndex();
  explicit IvfIndex(Options options);

  /// Adds a vector (L2-normalized); returns its insertion index. After a
  /// Build, new vectors join the exhaustively-scanned pending tail until
  /// the growth policy triggers a refresh.
  std::size_t Add(Vector v);

  /// (Re)clusters the library. The first call trains from scratch;
  /// subsequent calls warm-start from the existing centroids. Safe to
  /// call at any point; TopK before the first Build returns {} (the
  /// index has no lists to probe yet).
  void Build();

  /// Approximate top-k by cosine similarity over the probed clusters
  /// plus the exact pending tail. Hit indexes refer to insertion order,
  /// as in VectorStore; scores are exact float-kernel scores even under
  /// quantized_scan.
  std::vector<VectorStore::Hit> TopK(const Vector& query,
                                     std::size_t k) const;

  std::size_t size() const { return vectors_.size(); }
  bool built() const { return built_; }
  /// Library size at the last Build (vectors beyond it form the
  /// pending tail).
  std::size_t built_size() const { return built_size_; }
  /// Cluster count of the last Build (0 before the first Build).
  std::size_t num_clusters() const { return centroids_.size(); }

  const Options& options() const { return options_; }

  /// Adjusts the probe count of subsequent TopK calls without a rebuild
  /// (lists are probe-count independent). The recall@k-vs-latency sweep
  /// walks the frontier through this.
  void set_num_probes(std::size_t num_probes) {
    options_.num_probes = num_probes;
  }

 private:
  /// Dot product under the CosineSimilarity contract: mismatched
  /// dimensions (or empty vectors) score 0 rather than silently
  /// truncating to the shorter vector.
  static double ContractDot(const FlatVectors& rows, std::size_t i,
                            const Vector& q);

  /// The cluster count Build targets for `n` vectors.
  std::size_t TargetClusters(std::size_t n) const;

  Options options_;
  FlatVectors vectors_;
  QuantizedVectors codes_;  // in lockstep with vectors_ when quantized_scan
  FlatVectors centroids_;
  std::vector<std::vector<std::size_t>> lists_;  // per-centroid members
  bool built_ = false;
  std::size_t built_size_ = 0;
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_ANN_INDEX_H_
