#ifndef GREDVIS_EMBED_ANN_INDEX_H_
#define GREDVIS_EMBED_ANN_INDEX_H_

#include <cstdint>
#include <vector>

#include "embed/flat_vectors.h"
#include "embed/kernel.h"
#include "embed/vector_store.h"

namespace gred::embed {

/// Inverted-file (IVF-flat) approximate nearest-neighbour index.
///
/// The brute-force VectorStore is exact and fast enough for nvBench-scale
/// libraries (a few thousand vectors); this index exists for larger
/// embedding libraries: vectors are k-means-clustered and queries scan
/// only the `num_probes` closest clusters. Deterministic (seeded k-means,
/// fixed iteration count).
///
/// Vectors and centroids share VectorStore's flat SoA layout and blocked
/// dot-product kernel, and probed candidates feed a bounded top-k heap,
/// so a query allocates O(k) hits rather than materializing every probed
/// member.
class IvfIndex {
 public:
  struct Options {
    std::size_t num_clusters = 16;
    std::size_t num_probes = 4;
    std::size_t kmeans_iterations = 8;
    std::uint64_t seed = 42;
  };

  IvfIndex();
  explicit IvfIndex(Options options);

  /// Buffers a vector (L2-normalized); returns its insertion index.
  std::size_t Add(Vector v);

  /// Clusters the buffered vectors. Must be called after the last Add and
  /// before the first TopK. Safe to call again after more Adds.
  void Build();

  /// Approximate top-k by cosine similarity over the probed clusters.
  /// Hit indexes refer to insertion order, as in VectorStore.
  std::vector<VectorStore::Hit> TopK(const Vector& query,
                                     std::size_t k) const;

  std::size_t size() const { return vectors_.size(); }
  bool built() const { return built_; }

 private:
  /// Dot product under the CosineSimilarity contract: mismatched
  /// dimensions (or empty vectors) score 0 rather than silently
  /// truncating to the shorter vector.
  static double ContractDot(const FlatVectors& rows, std::size_t i,
                            const Vector& q);

  Options options_;
  FlatVectors vectors_;
  FlatVectors centroids_;
  std::vector<std::vector<std::size_t>> lists_;  // per-centroid members
  bool built_ = false;
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_ANN_INDEX_H_
