#ifndef GREDVIS_EMBED_QUANTIZED_VECTORS_H_
#define GREDVIS_EMBED_QUANTIZED_VECTORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "embed/aligned_buffer.h"
#include "embed/embedder.h"
#include "embed/flat_vectors.h"

namespace gred::embed {

/// Scalar (per-vector, asymmetric) int8 quantization of an embedding
/// library: each float row x is stored as uint8 codes c with
///   x_i  ≈  offset + scale * c_i,   c_i = round((x_i - min) / scale),
/// offset = min(x), scale = (max(x) - min(x)) / 255. A constant row
/// (max == min, including all-zero rows) quantizes to scale 0 / all
/// codes 0, reconstructing exactly.
///
/// The point is the scan: an approximate dot product against a
/// quantized query touches 1 byte per dimension instead of 4 and runs
/// on the exact integer kernel (DotCodes),
///   dot(x, y) ≈ sx*sy*Σ cx_i*cy_i + sx*oy*Σ cx_i + sy*ox*Σ cy_i
///               + d*ox*oy,
/// with the per-row code sum Σ cx_i precomputed at append time. The
/// error per dimension is bounded by scale/2 ≈ (max-min)/510 per side;
/// for L2-normalized rows that keeps the score error well below 1e-2 —
/// enough to rank a shortlist, never enough to be served directly.
/// Callers therefore always re-rank a widened shortlist with the exact
/// float kernel (VectorStore::TopKQuantized, IvfIndex); the quantized
/// score never leaves the scan.
///
/// Codes live in one contiguous 32-byte-aligned buffer at a stride
/// rounded to kRowAlignBytes, mirroring FlatVectors' layout; row metadata
/// (scale, offset, code sum, true dimension) is SoA alongside.
class QuantizedVectors {
 public:
  /// A query quantized once per search against this store's geometry.
  struct Query {
    std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>> codes;
    float offset = 0.0f;
    float scale = 0.0f;
    std::int64_t code_sum = 0;
    std::size_t dim = 0;
  };

  /// Quantizes and appends `dim` floats (a FlatVectors row prefix);
  /// returns the row index. `dim` must not exceed kMaxCodeDot.
  std::size_t Append(const float* row, std::size_t dim);

  /// Appends every row of `rows` starting at `first` (library catch-up
  /// after a batch of Adds).
  void AppendRows(const FlatVectors& rows, std::size_t first);

  /// Quantizes a (normalized) query with the same scheme.
  static Query QuantizeQuery(const Vector& q);

  /// Approximate dot of stored row `i` against the quantized query.
  /// Follows the CosineSimilarity contract: a dimension mismatch (or an
  /// empty query) scores exactly 0. Deterministic: integer dot plus a
  /// fixed-order double reconstruction.
  double ApproxDot(std::size_t i, const Query& q) const;

  std::size_t size() const { return dims_.size(); }
  std::size_t stride() const { return stride_; }
  bool empty() const { return dims_.empty(); }

  /// Bytes of code + metadata storage per row (memory accounting for
  /// the bench report; the float library it shadows pays 4x per dim).
  std::size_t bytes_per_row() const {
    return stride_ * sizeof(std::uint8_t) + sizeof(float) * 2 +
           sizeof(std::int32_t) + sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>> codes_;
  std::vector<float> scales_;
  std::vector<float> offsets_;
  std::vector<std::int32_t> code_sums_;
  std::vector<std::uint32_t> dims_;
  std::size_t stride_ = 0;
};

}  // namespace gred::embed

#endif  // GREDVIS_EMBED_QUANTIZED_VECTORS_H_
