#include "embed/quantized_vectors.h"

#include <algorithm>
#include <cassert>

#include "embed/kernel.h"

namespace gred::embed {

namespace {

/// Quantizes `dim` floats into `out` (already sized >= dim, zero-padded
/// past dim) and returns {offset, scale, code_sum}. Deterministic: plain
/// IEEE float arithmetic, truncating round-half-up on the non-negative
/// normalized values.
struct RowParams {
  float offset = 0.0f;
  float scale = 0.0f;
  std::int64_t code_sum = 0;
};

RowParams QuantizeRow(const float* x, std::size_t dim, std::uint8_t* out) {
  RowParams p;
  if (dim == 0) return p;
  float mn = x[0];
  float mx = x[0];
  for (std::size_t i = 1; i < dim; ++i) {
    mn = std::min(mn, x[i]);
    mx = std::max(mx, x[i]);
  }
  p.offset = mn;
  if (mx == mn) {
    // Constant row (including all-zero rows): scale 0, all codes 0,
    // reconstruction offset + 0*c == the exact value.
    return p;
  }
  p.scale = (mx - mn) / 255.0f;
  const float inv = 255.0f / (mx - mn);
  for (std::size_t i = 0; i < dim; ++i) {
    const float t = (x[i] - mn) * inv;  // in [0, 255] up to rounding
    int code = static_cast<int>(t + 0.5f);
    code = std::clamp(code, 0, 255);
    out[i] = static_cast<std::uint8_t>(code);
    p.code_sum += code;
  }
  return p;
}

}  // namespace

std::size_t QuantizedVectors::Append(const float* row, std::size_t dim) {
  assert(dim <= kMaxCodeDot && "quantized row exceeds DotCodes bound");
  const std::size_t needed = AlignedStride(dim, sizeof(std::uint8_t));
  if (needed > stride_) {
    // Re-pack at the wider stride (mixed-dimension stores only; the
    // embedders emit a fixed dimension).
    std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>> wider(
        dims_.size() * needed, 0);
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      std::copy_n(codes_.data() + i * stride_, stride_,
                  wider.data() + i * needed);
    }
    codes_ = std::move(wider);
    stride_ = needed;
  }
  const std::size_t index = dims_.size();
  codes_.resize(codes_.size() + stride_, 0);
  const RowParams p = QuantizeRow(row, dim, codes_.data() + index * stride_);
  scales_.push_back(p.scale);
  offsets_.push_back(p.offset);
  code_sums_.push_back(static_cast<std::int32_t>(p.code_sum));
  dims_.push_back(static_cast<std::uint32_t>(dim));
  return index;
}

void QuantizedVectors::AppendRows(const FlatVectors& rows, std::size_t first) {
  for (std::size_t i = first; i < rows.size(); ++i) {
    Append(rows.row(i), rows.row_size(i));
  }
}

QuantizedVectors::Query QuantizedVectors::QuantizeQuery(const Vector& q) {
  Query out;
  out.dim = q.size();
  out.codes.assign(AlignedStride(q.size(), sizeof(std::uint8_t)), 0);
  const RowParams p = QuantizeRow(q.data(), q.size(), out.codes.data());
  out.offset = p.offset;
  out.scale = p.scale;
  out.code_sum = p.code_sum;
  return out;
}

double QuantizedVectors::ApproxDot(std::size_t i, const Query& q) const {
  if (dims_[i] != q.dim || q.dim == 0) return 0.0;
  // Both rows are zero-padded to at least this aligned length, so the
  // integer dot can run over whole alignment units: padding contributes
  // zero products.
  const std::size_t n = AlignedStride(q.dim, sizeof(std::uint8_t));
  const std::int64_t dot =
      DotCodes(codes_.data() + i * stride_, q.codes.data(), n);
  // dot(x, y) = Σ (ox + sx*cx)(oy + sy*cy), expanded; fixed evaluation
  // order in double keeps the reconstruction deterministic everywhere.
  const double sx = scales_[i];
  const double ox = offsets_[i];
  const double sy = q.scale;
  const double oy = q.offset;
  return sx * sy * static_cast<double>(dot) +
         sx * oy * static_cast<double>(code_sums_[i]) +
         sy * ox * static_cast<double>(q.code_sum) +
         static_cast<double>(q.dim) * ox * oy;
}

}  // namespace gred::embed
