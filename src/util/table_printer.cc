#include "util/table_printer.h"

#include <algorithm>

#include "util/strings.h"

namespace gred {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      line += " " + cell;
      line.append(widths[c] - cell.size() + 1, ' ');
      line += "|";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string FormatPercent(double value) {
  return strings::Format("%.2f%%", value * 100.0);
}

}  // namespace gred
