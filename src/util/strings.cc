#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <algorithm>
#include <set>

namespace gred::strings {

namespace {

constexpr std::size_t kSizeMax = static_cast<std::size_t>(-1);

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

char AsciiUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiLower);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiUpper);
  return out;
}

std::string Trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && IsSpace(s[begin])) ++begin;
  while (end > begin && IsSpace(s[end - 1])) --end;
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) ++i;
    if (i > start) parts.emplace_back(s.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (AsciiLower(haystack[i + j]) != AsciiLower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::size_t EditDistance(std::string_view a, std::string_view b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

std::vector<std::string> SplitIdentifierWords(std::string_view ident) {
  std::vector<std::string> words;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      words.push_back(ToLower(current));
      current.clear();
    }
  };
  for (std::size_t i = 0; i < ident.size(); ++i) {
    char c = ident[i];
    if (c == '_' || c == '-' || c == ' ' || c == '.') {
      flush();
      continue;
    }
    bool is_digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    bool prev_digit =
        !current.empty() &&
        std::isdigit(static_cast<unsigned char>(current.back())) != 0;
    if (is_digit != prev_digit && !current.empty()) flush();
    // CamelCase boundary: lower followed by upper, or upper followed by
    // upper+lower (e.g. "HTTPServer" -> "http","server").
    if (!is_digit && c >= 'A' && c <= 'Z' && !current.empty()) {
      char last = current.back();
      bool last_lower = last >= 'a' && last <= 'z';
      bool next_lower =
          i + 1 < ident.size() && ident[i + 1] >= 'a' && ident[i + 1] <= 'z';
      if (last_lower || (last >= 'A' && last <= 'Z' && next_lower)) flush();
    }
    current.push_back(c);
  }
  flush();
  return words;
}

std::string ToSnakeCase(const std::vector<std::string>& words) {
  return Join(words, "_");
}

std::string ToCamelCase(const std::vector<std::string>& words) {
  std::string out;
  for (const std::string& w : words) {
    if (w.empty()) continue;
    out.push_back(AsciiUpper(w[0]));
    out.append(w.substr(1));
  }
  return out;
}

double IdentifierWordOverlap(std::string_view a, std::string_view b) {
  std::vector<std::string> wa = SplitIdentifierWords(a);
  std::vector<std::string> wb = SplitIdentifierWords(b);
  if (wa.empty() && wb.empty()) return 1.0;
  std::set<std::string> sa(wa.begin(), wa.end());
  std::set<std::string> sb(wb.begin(), wb.end());
  std::size_t inter = 0;
  for (const std::string& w : sa) inter += sb.count(w);
  std::size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::optional<std::size_t> ParsePositiveSize(std::string_view s) {
  std::string trimmed = Trim(s);
  if (trimmed.empty()) return std::nullopt;
  std::size_t value = 0;
  for (char c : trimmed) {
    if (c < '0' || c > '9') return std::nullopt;
    std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (kSizeMax - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  if (value == 0) return std::nullopt;
  return value;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace gred::strings
