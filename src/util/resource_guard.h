#ifndef GREDVIS_UTIL_RESOURCE_GUARD_H_
#define GREDVIS_UTIL_RESOURCE_GUARD_H_

#include <atomic>
#include <cstdint>

#include "util/status.h"

namespace gred {

/// Deterministic resource limits for one guarded unit of work (a query
/// execution, a pipeline stage, one evaluated example). Every field uses
/// 0 to mean "unlimited", so a default-constructed GuardLimits guards
/// nothing.
///
/// The deadline is expressed in *accounted ticks*, not wall clock,
/// following the fault-model convention of DESIGN.md §8: operators
/// charge one tick per unit of work (row visited, token parsed), so a
/// run trips at exactly the same point on every machine, thread count
/// and repeat. Memory is likewise an accounting model (a fixed cost per
/// materialized cell, see kAccountedBytesPerCell), not heap telemetry —
/// real allocator numbers would be platform-dependent and racy.
struct GuardLimits {
  /// Accounted work units before the deadline trips.
  std::uint64_t deadline_ticks = 0;
  /// Rows a query may materialize across all operators (scan output,
  /// join output, group/projection output).
  std::uint64_t row_budget = 0;
  /// Accounted bytes of materialized state (kAccountedBytesPerCell per
  /// cell of every materialized row).
  std::uint64_t memory_budget = 0;
  /// Join output cardinality (rows emitted by join operators only);
  /// catches pathological many-to-many key skew before the row budget.
  std::uint64_t join_budget = 0;

  /// True when every field is 0, i.e. the limits guard nothing.
  bool Unlimited() const {
    return deadline_ticks == 0 && row_budget == 0 && memory_budget == 0 &&
           join_budget == 0;
  }
};

/// Deterministic per-cell cost of the memory accounting model. A row of
/// N cells charges N * kAccountedBytesPerCell bytes regardless of the
/// actual payload, so budgets trip at identical points on every
/// platform.
inline constexpr std::uint64_t kAccountedBytesPerCell = 16;

/// Cooperative execution context: budgets plus a cancellation token.
///
/// One ExecContext guards one logical unit of work. Loops in guarded
/// code charge the context as they do work (`ChargeTicks`, `ChargeRows`,
/// ...); the first charge that crosses a limit returns
/// `StatusCode::kResourceExhausted` and latches the context — every
/// subsequent charge fails too, so an operator that forgets one check
/// still stops at the next. `RequestCancel()` (from any thread) makes
/// the next charge return `StatusCode::kCancelled`.
///
/// Charging with no limits set never fails (cancellation aside) and
/// never alters results: a guarded run with unlimited budgets is
/// bit-identical to an unguarded one (asserted by the metamorphic
/// suite). Thread-safe: counters are relaxed atomics; totals are exact,
/// and the latch guarantees at-most-once trip accounting per context.
///
/// Charge granularity is the caller's choice: charges are cumulative
/// (`used += n; trip iff used > limit`), so charging a 1024-row chunk
/// in one call trips iff 1024 per-row calls would have — the columnar
/// executor relies on this to charge per chunk while keeping trip
/// points identical to the row-at-a-time reference engine (asserted by
/// the engine-differential suite in tests/exec_reference_test.cc).
class ExecContext {
 public:
  /// Unguarded context: all charges succeed (until cancelled).
  ExecContext() = default;
  explicit ExecContext(GuardLimits limits) : limits_(limits) {}

  const GuardLimits& limits() const { return limits_; }

  /// Charges `n` accounted work units against the deadline.
  Status ChargeTicks(std::uint64_t n);
  /// Charges `n` materialized rows of `cells` cells each (rows against
  /// the row budget, cells against the memory model).
  Status ChargeRows(std::uint64_t n, std::uint64_t cells);
  /// Charges `n` join output rows (join budget only; callers charge the
  /// materialized rows separately via ChargeRows).
  Status ChargeJoinRows(std::uint64_t n);

  /// Requests cooperative cancellation; the next charge on any thread
  /// fails with kCancelled. Idempotent.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once any charge has tripped a limit (sticky).
  bool exhausted() const { return tripped_.load(std::memory_order_relaxed); }

  /// Usage counters (exact totals; snapshot may mix instants under
  /// concurrent charging, which is fine for reporting).
  struct Usage {
    std::uint64_t ticks = 0;
    std::uint64_t rows = 0;
    std::uint64_t bytes = 0;
    std::uint64_t join_rows = 0;
    bool exhausted = false;
    bool cancelled = false;
  };
  Usage usage() const;

 private:
  /// Pre-charge gate: latched exhaustion or cancellation.
  Status Gate() const;
  /// Latches the context and builds the typed error for `what`.
  Status Trip(const char* what, std::uint64_t used, std::uint64_t limit);

  GuardLimits limits_;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> rows_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> join_rows_{0};
  std::atomic<bool> tripped_{false};
  std::atomic<bool> cancelled_{false};
};

}  // namespace gred

#endif  // GREDVIS_UTIL_RESOURCE_GUARD_H_
