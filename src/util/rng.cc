#include "util/rng.h"

#include <cassert>

namespace gred {

std::uint64_t Rng::Next() {
  // splitmix64 (Steele, Lea, Flood 2014). Passes BigCrush when used as a
  // stream; more than adequate for workload generation.
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::size_t Rng::PickWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd2b74407b1ce6e93ULL); }

std::uint64_t Fnv1a64Continue(std::uint64_t state, const void* data,
                              std::size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= 0x100000001b3ULL;
  }
  return state;
}

std::uint64_t Fnv1a64Continue(std::uint64_t state, const std::string& s) {
  return Fnv1a64Continue(state, s.data(), s.size());
}

std::uint64_t Fnv1a64(const void* data, std::size_t size) {
  return Fnv1a64Continue(0xcbf29ce484222325ULL, data, size);
}

std::uint64_t Fnv1a64(const std::string& s) {
  return Fnv1a64(s.data(), s.size());
}

}  // namespace gred
