#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace gred {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void AbortOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result::value() called on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace gred
