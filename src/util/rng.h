#ifndef GREDVIS_UTIL_RNG_H_
#define GREDVIS_UTIL_RNG_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace gred {

/// Deterministic pseudo-random number generator (splitmix64).
///
/// Every stochastic choice in the benchmark generator and perturbation
/// engine flows through an explicitly-seeded `Rng`, making all datasets
/// and experiments byte-for-byte reproducible across platforms (no reliance
/// on libstdc++ distribution internals).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability `p` of returning true.
  bool NextBool(double p);

  /// Uniformly picks an element index from a non-empty container size.
  std::size_t NextIndex(std::size_t size) {
    return static_cast<std::size_t>(NextBounded(size));
  }

  /// Picks a reference to a uniformly random element of `v` (non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[NextIndex(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = NextIndex(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Draws an index according to non-negative `weights` (at least one > 0).
  std::size_t PickWeighted(const std::vector<double>& weights);

  /// Derives an independent child generator; changing the child never
  /// affects this generator's sequence.
  Rng Fork();

 private:
  std::uint64_t state_;
};

/// Stable 64-bit FNV-1a hash of a byte string (used for deterministic
/// feature hashing in the embedder).
std::uint64_t Fnv1a64(const void* data, std::size_t size);

/// Convenience overload for strings.
std::uint64_t Fnv1a64(const std::string& s);

/// Continues an FNV-1a hash from `state` over `size` more bytes. Because
/// FNV-1a folds bytes left to right, `Fnv1a64Continue(Fnv1a64(a), b)` is
/// bit-identical to `Fnv1a64(a + b)` — the embedder uses this to hash
/// prefixed features ("tok:" + stem) without building the concatenation.
std::uint64_t Fnv1a64Continue(std::uint64_t state, const void* data,
                              std::size_t size);

/// Convenience overload for strings.
std::uint64_t Fnv1a64Continue(std::uint64_t state, const std::string& s);

}  // namespace gred

#endif  // GREDVIS_UTIL_RNG_H_
