#ifndef GREDVIS_UTIL_THREAD_POOL_H_
#define GREDVIS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gred {

/// Number of worker threads to use by default: the hardware concurrency,
/// never less than 1 (std::thread::hardware_concurrency may return 0).
std::size_t HardwareThreads();

/// A fixed-size worker pool.
///
/// Tasks are queued FIFO and executed by `num_threads` workers; `Submit`
/// returns a `std::future` so callers can collect results (or rethrow an
/// exception raised inside the task — exceptions propagate through
/// `future::get`, they never kill a worker). The pool joins all workers
/// on destruction after draining the queue.
///
/// A pool with one thread is a valid degenerate configuration: tasks run
/// on the single worker in submission order, which the eval harness
/// relies on for its serial-equivalence tests.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Thread-safe.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // std::function requires copyable callables, so the move-only
    // packaged_task rides behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gred

#endif  // GREDVIS_UTIL_THREAD_POOL_H_
