#include "util/resource_guard.h"

#include "util/strings.h"

namespace gred {

Status ExecContext::Gate() const {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("execution cancelled");
  }
  if (tripped_.load(std::memory_order_relaxed)) {
    return Status::ResourceExhausted("resource budget already exhausted");
  }
  return Status::OK();
}

Status ExecContext::Trip(const char* what, std::uint64_t used,
                         std::uint64_t limit) {
  tripped_.store(true, std::memory_order_relaxed);
  return Status::ResourceExhausted(strings::Format(
      "%s budget exhausted (%llu used, limit %llu)", what,
      static_cast<unsigned long long>(used),
      static_cast<unsigned long long>(limit)));
}

Status ExecContext::ChargeTicks(std::uint64_t n) {
  GRED_RETURN_IF_ERROR(Gate());
  std::uint64_t used =
      ticks_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.deadline_ticks != 0 && used > limits_.deadline_ticks) {
    return Trip("deadline (tick)", used, limits_.deadline_ticks);
  }
  return Status::OK();
}

Status ExecContext::ChargeRows(std::uint64_t n, std::uint64_t cells) {
  GRED_RETURN_IF_ERROR(Gate());
  std::uint64_t used_rows = rows_.fetch_add(n, std::memory_order_relaxed) + n;
  std::uint64_t charged_bytes = n * cells * kAccountedBytesPerCell;
  std::uint64_t used_bytes =
      bytes_.fetch_add(charged_bytes, std::memory_order_relaxed) +
      charged_bytes;
  if (limits_.row_budget != 0 && used_rows > limits_.row_budget) {
    return Trip("row", used_rows, limits_.row_budget);
  }
  if (limits_.memory_budget != 0 && used_bytes > limits_.memory_budget) {
    return Trip("memory", used_bytes, limits_.memory_budget);
  }
  return Status::OK();
}

Status ExecContext::ChargeJoinRows(std::uint64_t n) {
  GRED_RETURN_IF_ERROR(Gate());
  std::uint64_t used =
      join_rows_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.join_budget != 0 && used > limits_.join_budget) {
    return Trip("join cardinality", used, limits_.join_budget);
  }
  return Status::OK();
}

ExecContext::Usage ExecContext::usage() const {
  Usage u;
  u.ticks = ticks_.load(std::memory_order_relaxed);
  u.rows = rows_.load(std::memory_order_relaxed);
  u.bytes = bytes_.load(std::memory_order_relaxed);
  u.join_rows = join_rows_.load(std::memory_order_relaxed);
  u.exhausted = tripped_.load(std::memory_order_relaxed);
  u.cancelled = cancelled_.load(std::memory_order_relaxed);
  return u;
}

}  // namespace gred
