#ifndef GREDVIS_UTIL_TIMING_H_
#define GREDVIS_UTIL_TIMING_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gred {

/// A thread-safe wall-clock accumulator (relaxed atomics: totals are
/// exact, but concurrent readers may observe nanos and count from
/// different instants — fine for reporting).
class AtomicDuration {
 public:
  void AddNanos(std::int64_t ns) {
    nanos_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  std::int64_t nanos() const { return nanos_.load(std::memory_order_relaxed); }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double seconds() const { return static_cast<double>(nanos()) * 1e-9; }

  void Reset() {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> nanos_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Adds the scope's elapsed wall time to an AtomicDuration. A null
/// target disables the timer (zero-cost opt-out for callers that do not
/// collect timing).
class ScopedTimer {
 public:
  explicit ScopedTimer(AtomicDuration* target)
      : target_(target),
        start_(target == nullptr ? std::chrono::steady_clock::time_point()
                                 : std::chrono::steady_clock::now()) {}

  ~ScopedTimer() {
    if (target_ == nullptr) return;
    target_->AddNanos(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  AtomicDuration* target_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gred

#endif  // GREDVIS_UTIL_TIMING_H_
