#ifndef GREDVIS_UTIL_STATUS_H_
#define GREDVIS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace gred {

/// Machine-readable classification of an error condition.
///
/// Mirrors the Arrow/RocksDB idiom: library code never throws across the
/// public API boundary; fallible operations return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kExecutionError,
  kInternal,
  kUnimplemented,
  /// A transient failure (backend overload, dropped connection, injected
  /// fault): the operation may succeed if retried. The only code for
  /// which `Status::IsTransient()` is true.
  kUnavailable,
  /// A resource budget (accounted-tick deadline, row/memory/join budget)
  /// was exhausted mid-operation. Deterministic and permanent for the
  /// given limits: retrying with the same budget fails at the same
  /// point. See util/resource_guard.h.
  kResourceExhausted,
  /// The operation observed a cooperative cancellation request and
  /// stopped early. See ExecContext::RequestCancel().
  kCancelled,
};

/// Returns a stable human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail without producing a value.
///
/// `Status` is cheap to copy in the OK case and carries a code plus a
/// message otherwise. Use the factory functions (`Status::OK()`,
/// `Status::ParseError(...)`, ...) rather than the constructor.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for the success status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True when the failure is worth retrying (see StatusCode::kUnavailable).
  /// Permanent errors (parse failures, invalid arguments, ...) are not.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }
  /// True when a resource guard tripped (see util/resource_guard.h).
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// The result of an operation that either yields a `T` or fails with a
/// `Status`. Accessing `value()` when `!ok()` is a programming error and
/// aborts the process (checked in all build modes).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value marks success; from a non-OK
  /// status marks failure. These mirror arrow::Result conventions.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void AbortOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::AbortOnBadResultAccess(status_);
}

/// Propagates a non-OK Status from the evaluated expression.
#define GRED_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::gred::Status _gred_status = (expr);            \
    if (!_gred_status.ok()) return _gred_status;     \
  } while (false)

/// Evaluates a Result expression; on error returns its Status, otherwise
/// binds the value to `lhs`.
#define GRED_ASSIGN_OR_RETURN(lhs, expr)             \
  auto GRED_CONCAT_(_gred_res_, __LINE__) = (expr);  \
  if (!GRED_CONCAT_(_gred_res_, __LINE__).ok())      \
    return GRED_CONCAT_(_gred_res_, __LINE__).status(); \
  lhs = std::move(GRED_CONCAT_(_gred_res_, __LINE__)).value()

#define GRED_CONCAT_INNER_(a, b) a##b
#define GRED_CONCAT_(a, b) GRED_CONCAT_INNER_(a, b)

}  // namespace gred

#endif  // GREDVIS_UTIL_STATUS_H_
