#include "util/thread_pool.h"

#include <algorithm>

namespace gred {

std::size_t HardwareThreads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A packaged_task captures any exception into its future, so nothing
    // escapes into the worker loop.
    task();
  }
}

}  // namespace gred
