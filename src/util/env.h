#ifndef GREDVIS_UTIL_ENV_H_
#define GREDVIS_UTIL_ENV_H_

#include <cstdint>
#include <cstddef>

namespace gred {

/// Strict environment-variable readers shared by the bench harness, the
/// CLI and the serving layer. The contract for every helper: an unset
/// variable returns `fallback`; a set variable that does not parse —
/// garbage, the wrong sign, out of range, trailing characters — prints
/// a clear message to stderr and exits(2). A mistyped override must not
/// silently fall back and run a long job (or a production server) on
/// the wrong configuration.

/// Strictly positive integer (counts that cannot meaningfully be zero:
/// worker pools, queue capacities, request totals).
std::size_t EnvSizeOrDie(const char* name, std::size_t fallback);

/// Non-negative integer where 0 means "off" (deadlines, budgets,
/// watermarks, breaker thresholds).
std::uint64_t EnvCountOrDie(const char* name, std::uint64_t fallback);

/// Probability / rate in [0, 1] (fault rates, token-bucket refill).
double EnvRateOrDie(const char* name, double fallback);

/// Boolean: "0" is false, "1" is true, anything else dies.
bool EnvFlagOrDie(const char* name, bool fallback);

}  // namespace gred

#endif  // GREDVIS_UTIL_ENV_H_
