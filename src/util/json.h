#ifndef GREDVIS_UTIL_JSON_H_
#define GREDVIS_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gred::json {

/// A minimal immutable-ish JSON document model, sufficient for emitting
/// Vega-Lite specs and dataset exports. Keys of objects keep insertion
/// order (Vega-Lite specs read better that way).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d);
  static Value Int(std::int64_t i);
  static Value Str(std::string s);
  static Value Array();
  static Value Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Array operations (require kind()==kArray).
  void Append(Value v);
  std::size_t size() const { return array_.size(); }
  const Value& at(std::size_t i) const { return array_[i]; }

  /// Object operations (require kind()==kObject).
  void Set(const std::string& key, Value v);
  const Value* Find(const std::string& key) const;

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  /// Serializes the document. `indent` <= 0 means compact single-line.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Escapes a string for embedding in JSON output (adds no quotes).
/// Every escape the parser understands round-trips: control characters
/// use the short forms (\n, \t, \r, \b, \f) or \u00XX, so
/// Parse(Dump(v)) reproduces v exactly.
std::string Escape(const std::string& s);

/// Maximum container nesting the parser accepts. ParseValue recurses
/// once per '['/'{', so the depth must be bounded before untrusted
/// bytes reach the parser (the serve wire protocol) — same convention
/// as dvq::kMaxParseDepth, sized for deeply nested chart specs and
/// inline data rather than hand-written DVQs. Deeper input returns a
/// parse error instead of recursing toward stack exhaustion.
inline constexpr int kMaxJsonDepth = 64;

/// Parses a JSON document. Supports the full value grammar produced by
/// Value::Dump (objects, arrays, strings with \uXXXX escapes, numbers,
/// booleans, null); trailing content after the document is an error.
///
/// Hardened against untrusted input: container nesting is capped at
/// kMaxJsonDepth, numbers must match exactly what strtod converts
/// (rejecting "+1", "1.2.3", "1e+e5"), and \uXXXX escapes combine
/// valid surrogate pairs into one 4-byte UTF-8 sequence while lone
/// surrogates are an error (never CESU-8 output).
class ParseResult {
 public:
  ParseResult(Value value) : ok_(true), value_(std::move(value)) {}
  ParseResult(std::string error) : ok_(false), error_(std::move(error)) {}

  bool ok() const { return ok_; }
  const Value& value() const { return value_; }
  const std::string& error() const { return error_; }

 private:
  bool ok_;
  Value value_;
  std::string error_;
};

ParseResult Parse(const std::string& text);

}  // namespace gred::json

#endif  // GREDVIS_UTIL_JSON_H_
