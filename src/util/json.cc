#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gred::json {

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

Value Value::Int(std::int64_t i) { return Number(static_cast<double>(i)); }

Value Value::Str(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

void Value::Append(Value v) { array_.push_back(std::move(v)); }

void Value::Set(const std::string& key, Value v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

const Value* Value::Find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

std::string NumberToString(double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  return buf;
}

void Indent(std::string* out, int indent, int depth) {
  if (indent > 0) {
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      out->append(NumberToString(number_));
      break;
    case Kind::kString:
      out->push_back('"');
      out->append(Escape(string_));
      out->push_back('"');
      break;
    case Kind::kArray: {
      out->push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) Indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        out->push_back('"');
        out->append(Escape(object_[i].first));
        out->append("\":");
        if (indent > 0) out->push_back(' ');
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) Indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParseResult Run() {
    SkipWs();
    Value v;
    std::string error;
    if (!ParseValue(&v, &error, 0)) return ParseResult(std::move(error));
    SkipWs();
    if (pos_ != text_.size()) {
      return ParseResult("trailing content at offset " +
                         std::to_string(pos_));
    }
    return ParseResult(std::move(v));
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(std::string* error, const std::string& what) {
    *error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool Literal(const char* word) {
    std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool ParseValue(Value* out, std::string* error, int depth) {
    if (pos_ >= text_.size()) return Fail(error, "unexpected end");
    char c = text_[pos_];
    if (c == '{' || c == '[') {
      // One native stack frame per nesting level: cap the depth so a
      // line of a few thousand '[' is a parse error, not a stack
      // overflow (see kMaxJsonDepth).
      if (depth >= kMaxJsonDepth) {
        return Fail(error, "nesting exceeds the maximum depth of " +
                               std::to_string(kMaxJsonDepth));
      }
      return c == '{' ? ParseObject(out, error, depth)
                      : ParseArray(out, error, depth);
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s, error)) return false;
      *out = Value::Str(std::move(s));
      return true;
    }
    if (Literal("true")) {
      *out = Value::Bool(true);
      return true;
    }
    if (Literal("false")) {
      *out = Value::Bool(false);
      return true;
    }
    if (Literal("null")) {
      *out = Value::Null();
      return true;
    }
    return ParseNumber(out, error);
  }

  bool ParseNumber(Value* out, std::string* error) {
    std::size_t start = pos_;
    // JSON has no leading '+', and strtod would happily accept one, so
    // the end-pointer check below cannot catch it — reject it up front.
    if (pos_ < text_.size() && text_[pos_] == '+') {
      return Fail(error, "expected a value");
    }
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      digits = digits ||
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0;
      ++pos_;
    }
    if (!digits) {
      pos_ = start;
      return Fail(error, "expected a value");
    }
    // The greedy scan above over-consumes ("1.2.3", "1e+e5", "1-2"):
    // accept the span only when strtod converts every consumed byte, so
    // garbage is a parse error instead of a silently truncated number.
    char* end = nullptr;
    double parsed = std::strtod(text_.c_str() + start, &end);
    if (end != text_.c_str() + pos_) {
      pos_ = start;
      return Fail(error, "malformed number");
    }
    *out = Value::Number(parsed);
    return true;
  }

  /// Consumes exactly four hex digits (the payload of a \u escape).
  bool ParseHex4(unsigned* out, std::string* error) {
    if (pos_ + 4 > text_.size()) return Fail(error, "bad \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_ + static_cast<std::size_t>(i)];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code += static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code += static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Fail(error, "bad \\u escape");
      }
    }
    pos_ += 4;
    *out = code;
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    if (text_[pos_] != '"') return Fail(error, "expected '\"'");
    ++pos_;
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c != '\\') {
        // JSON strings may not contain raw control characters; they
        // must arrive escaped ("\\n", "\\t", ...). Dump always escapes
        // them, so this only rejects input we never produced.
        if (static_cast<unsigned char>(c) < 0x20) {
          return Fail(error, "raw control character in string");
        }
        s.push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Fail(error, "bad escape");
      char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"':
          s.push_back('"');
          break;
        case '\\':
          s.push_back('\\');
          break;
        case '/':
          s.push_back('/');
          break;
        case 'n':
          s.push_back('\n');
          break;
        case 't':
          s.push_back('\t');
          break;
        case 'r':
          s.push_back('\r');
          break;
        case 'b':
          s.push_back('\b');
          break;
        case 'f':
          s.push_back('\f');
          break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code, error)) return false;
          // Surrogate halves are not code points: a high surrogate must
          // be followed by \uDC00..\uDFFF and the pair combines into one
          // supplementary code point (one 4-byte UTF-8 sequence, never
          // the two 3-byte CESU-8 sequences the old code emitted); a
          // lone half in either order is malformed input.
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail(error, "lone low surrogate");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail(error, "lone high surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHex4(&low, error)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail(error, "invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          // UTF-8 encode the (now full) code point.
          if (code < 0x80) {
            s.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (code >> 6)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            s.push_back(static_cast<char>(0xE0 | (code >> 12)));
            s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            s.push_back(static_cast<char>(0xF0 | (code >> 18)));
            s.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail(error, "unknown escape");
      }
    }
    if (pos_ >= text_.size()) return Fail(error, "unterminated string");
    ++pos_;  // closing quote
    *out = std::move(s);
    return true;
  }

  bool ParseArray(Value* out, std::string* error, int depth) {
    ++pos_;  // '['
    Value arr = Value::Array();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = std::move(arr);
      return true;
    }
    while (true) {
      SkipWs();
      Value item;
      if (!ParseValue(&item, error, depth + 1)) return false;
      arr.Append(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Fail(error, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        break;
      }
      return Fail(error, "expected ',' or ']'");
    }
    *out = std::move(arr);
    return true;
  }

  bool ParseObject(Value* out, std::string* error, int depth) {
    ++pos_;  // '{'
    Value obj = Value::Object();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = std::move(obj);
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key, error)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail(error, "expected ':'");
      }
      ++pos_;
      SkipWs();
      Value item;
      if (!ParseValue(&item, error, depth + 1)) return false;
      obj.Set(key, std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Fail(error, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        break;
      }
      return Fail(error, "expected ',' or '}'");
    }
    *out = std::move(obj);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

ParseResult Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace gred::json
