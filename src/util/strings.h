#ifndef GREDVIS_UTIL_STRINGS_H_
#define GREDVIS_UTIL_STRINGS_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gred::strings {

/// Returns `s` with ASCII letters lower-cased.
std::string ToLower(std::string_view s);

/// Returns `s` with ASCII letters upper-cased.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if the strings are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Case-insensitive substring check.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Levenshtein edit distance over bytes.
std::size_t EditDistance(std::string_view a, std::string_view b);

/// Edit similarity in [0,1]: 1 - distance / max(len). Both empty -> 1.
double EditSimilarity(std::string_view a, std::string_view b);

/// Splits an identifier into lower-cased word pieces. Handles snake_case,
/// kebab-case, spaces, digits and CamelCase boundaries:
/// "Dept_ID" -> {"dept","id"}, "maxSalary2" -> {"max","salary","2"}.
std::vector<std::string> SplitIdentifierWords(std::string_view ident);

/// Joins word pieces into snake_case ("dept","id" -> "dept_id").
std::string ToSnakeCase(const std::vector<std::string>& words);

/// Joins word pieces into CamelCase ("dept","id" -> "DeptId").
std::string ToCamelCase(const std::vector<std::string>& words);

/// Jaccard similarity of the word-piece sets of two identifiers.
double IdentifierWordOverlap(std::string_view a, std::string_view b);

/// Parses a strictly positive decimal integer (optional surrounding
/// whitespace). Returns nullopt for anything else: empty strings, signs,
/// garbage, trailing junk, zero, or values that overflow std::size_t.
/// Used to validate the GRED_BENCH_* environment overrides.
std::optional<std::size_t> ParsePositiveSize(std::string_view s);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace gred::strings

#endif  // GREDVIS_UTIL_STRINGS_H_
