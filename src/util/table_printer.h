#ifndef GREDVIS_UTIL_TABLE_PRINTER_H_
#define GREDVIS_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace gred {

/// Renders aligned ASCII tables for benchmark reports. Used by every
/// bench binary so that reproduced tables visually mirror the paper's.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are right-padded
  /// with empty cells; longer rows are truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator line.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` as a percentage with two decimals, e.g. "85.17%".
std::string FormatPercent(double value);

}  // namespace gred

#endif  // GREDVIS_UTIL_TABLE_PRINTER_H_
