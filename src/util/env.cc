#include "util/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/strings.h"

namespace gred {

namespace {

[[noreturn]] void DieInvalid(const char* name, const char* value,
                             const char* expected) {
  std::fprintf(stderr, "[env] invalid %s=\"%s\": expected %s\n", name, value,
               expected);
  std::exit(2);
}

}  // namespace

std::size_t EnvSizeOrDie(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  std::optional<std::size_t> parsed = strings::ParsePositiveSize(value);
  if (!parsed.has_value()) DieInvalid(name, value, "a positive integer");
  return *parsed;
}

std::uint64_t EnvCountOrDie(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  // "0" is a meaningful setting (off), which ParsePositiveSize rejects;
  // everything else must still be a clean unsigned integer.
  std::string v(value);
  if (v == "0") return 0;
  std::optional<std::size_t> parsed = strings::ParsePositiveSize(v);
  if (!parsed.has_value()) DieInvalid(name, value, "a non-negative integer");
  return static_cast<std::uint64_t>(*parsed);
}

double EnvRateOrDie(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (errno != 0 || end == value || *end != '\0' || parsed < 0.0 ||
      parsed > 1.0) {
    DieInvalid(name, value, "a number in [0, 1]");
  }
  return parsed;
}

bool EnvFlagOrDie(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  std::string v(value);
  if (v == "0") return false;
  if (v == "1") return true;
  DieInvalid(name, value, "0 or 1");
}

}  // namespace gred
