#include "viz/svg.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "util/strings.h"

namespace gred::viz {

namespace {

constexpr const char* kPalette[] = {
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759",
    "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
};

std::string XmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Num(double v) { return strings::Format("%.2f", v); }

/// Rounds the axis maximum up to a "nice" 1/2/5 multiple.
double NiceCeil(double v) {
  if (v <= 0.0) return 1.0;
  double mag = std::pow(10.0, std::floor(std::log10(v)));
  double norm = v / mag;
  double nice = norm <= 1.0 ? 1.0 : norm <= 2.0 ? 2.0 : norm <= 5.0 ? 5.0
                                                                    : 10.0;
  return nice * mag;
}

struct Frame {
  double x0, y0, x1, y1;  // plot area (y grows downward in SVG)
};

void DrawAxes(std::string* svg, const Frame& frame, double y_min,
              double y_max, const std::string& x_label,
              const std::string& y_label) {
  *svg += "<line x1='" + Num(frame.x0) + "' y1='" + Num(frame.y1) +
          "' x2='" + Num(frame.x1) + "' y2='" + Num(frame.y1) +
          "' stroke='#333'/>\n";
  *svg += "<line x1='" + Num(frame.x0) + "' y1='" + Num(frame.y0) +
          "' x2='" + Num(frame.x0) + "' y2='" + Num(frame.y1) +
          "' stroke='#333'/>\n";
  const int ticks = 5;
  for (int i = 0; i <= ticks; ++i) {
    double value = y_min + (y_max - y_min) * i / ticks;
    double y = frame.y1 - (frame.y1 - frame.y0) * i / ticks;
    *svg += "<line x1='" + Num(frame.x0 - 4) + "' y1='" + Num(y) + "' x2='" +
            Num(frame.x0) + "' y2='" + Num(y) + "' stroke='#333'/>\n";
    *svg += "<text x='" + Num(frame.x0 - 8) + "' y='" + Num(y + 4) +
            "' font-size='11' text-anchor='end' fill='#333'>" +
            XmlEscape(strings::Format("%g", value)) + "</text>\n";
  }
  double mid_x = (frame.x0 + frame.x1) / 2;
  *svg += "<text x='" + Num(mid_x) + "' y='" + Num(frame.y1 + 48) +
          "' font-size='12' text-anchor='middle' fill='#333'>" +
          XmlEscape(x_label) + "</text>\n";
  *svg += "<text x='14' y='" + Num((frame.y0 + frame.y1) / 2) +
          "' font-size='12' text-anchor='middle' fill='#333' transform='"
          "rotate(-90 14 " +
          Num((frame.y0 + frame.y1) / 2) + ")'>" + XmlEscape(y_label) +
          "</text>\n";
}

void DrawXCategory(std::string* svg, const Frame& frame, double center_x,
                   const std::string& label) {
  std::string text = label.size() > 14 ? label.substr(0, 13) + "…" : label;
  *svg += "<text x='" + Num(center_x) + "' y='" + Num(frame.y1 + 14) +
          "' font-size='10' text-anchor='end' fill='#333' transform='rotate("
          "-35 " +
          Num(center_x) + " " + Num(frame.y1 + 14) + ")'>" +
          XmlEscape(text) + "</text>\n";
}

std::vector<std::string> SeriesNames(const exec::ResultSet& data) {
  std::vector<std::string> names;
  for (const auto& row : data.rows) {
    if (row.size() < 3) continue;
    std::string name = row[2].ToString();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
  return names;
}

void DrawLegend(std::string* svg, const SvgOptions& options,
                const std::vector<std::string>& names) {
  double y = static_cast<double>(options.margin_top);
  double x = static_cast<double>(options.width - options.margin_right - 120);
  for (std::size_t i = 0; i < names.size() && i < 8; ++i) {
    *svg += "<rect x='" + Num(x) + "' y='" + Num(y) +
            "' width='10' height='10' fill='" +
            kPalette[i % 8] + "'/>\n";
    *svg += "<text x='" + Num(x + 14) + "' y='" + Num(y + 9) +
            "' font-size='11' fill='#333'>" + XmlEscape(names[i]) +
            "</text>\n";
    y += 16;
  }
}

}  // namespace

std::string RenderSvg(const Chart& chart, const SvgOptions& options) {
  const std::size_t shown =
      std::min(options.max_items, chart.data.rows.size());
  std::string svg = strings::Format(
      "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d' "
      "viewBox='0 0 %d %d'>\n",
      options.width, options.height, options.width, options.height);
  svg += "<rect width='100%' height='100%' fill='white'/>\n";
  svg += "<text x='" + Num(options.width / 2.0) +
         "' y='20' font-size='14' text-anchor='middle' fill='#111'>" +
         XmlEscape(chart.title) + "</text>\n";

  Frame frame;
  frame.x0 = options.margin_left;
  frame.y0 = options.margin_top;
  frame.x1 = options.width - options.margin_right;
  frame.y1 = options.height - options.margin_bottom;

  if (shown == 0) {
    svg += "<text x='" + Num(options.width / 2.0) + "' y='" +
           Num(options.height / 2.0) +
           "' font-size='13' text-anchor='middle' fill='#666'>(no data)"
           "</text>\n</svg>\n";
    return svg;
  }

  const auto& rows = chart.data.rows;
  const bool has_series = chart.data.num_columns() >= 3 &&
                          !chart.series_label.empty();
  std::vector<std::string> series = has_series
                                        ? SeriesNames(chart.data)
                                        : std::vector<std::string>{};
  auto series_index = [&](const storage::Value& v) -> std::size_t {
    std::string name = v.ToString();
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (series[i] == name) return i;
    }
    return 0;
  };

  if (chart.type == dvq::ChartType::kPie) {
    double cx = (frame.x0 + frame.x1) / 2;
    double cy = (frame.y0 + frame.y1) / 2;
    double r = std::min(frame.x1 - frame.x0, frame.y1 - frame.y0) / 2 - 10;
    double total = 0.0;
    for (std::size_t i = 0; i < shown; ++i) {
      total += std::max(0.0, rows[i][1].AsDouble());
    }
    if (total <= 0.0) total = 1.0;
    double angle = -M_PI / 2;
    std::vector<std::string> labels;
    for (std::size_t i = 0; i < shown; ++i) {
      double frac = std::max(0.0, rows[i][1].AsDouble()) / total;
      double next = angle + frac * 2 * M_PI;
      double x1 = cx + r * std::cos(angle);
      double y1 = cy + r * std::sin(angle);
      double x2 = cx + r * std::cos(next);
      double y2 = cy + r * std::sin(next);
      int large = next - angle > M_PI ? 1 : 0;
      svg += "<path d='M " + Num(cx) + " " + Num(cy) + " L " + Num(x1) +
             " " + Num(y1) + " A " + Num(r) + " " + Num(r) + " 0 " +
             std::to_string(large) + " 1 " + Num(x2) + " " + Num(y2) +
             " Z' fill='" + kPalette[i % 8] +
             "' stroke='white' stroke-width='1'/>\n";
      labels.push_back(rows[i][0].ToString());
      angle = next;
    }
    DrawLegend(&svg, options, labels);
    svg += "</svg>\n";
    return svg;
  }

  // Y scale (shared by the remaining chart kinds).
  double y_min = 0.0;
  double y_max = 0.0;
  for (std::size_t i = 0; i < shown; ++i) {
    y_min = std::min(y_min, rows[i][1].AsDouble());
    y_max = std::max(y_max, rows[i][1].AsDouble());
  }
  y_max = NiceCeil(y_max);
  if (y_max == y_min) y_max = y_min + 1.0;
  auto y_pos = [&](double v) {
    return frame.y1 - (v - y_min) / (y_max - y_min) * (frame.y1 - frame.y0);
  };

  const bool numeric_x = chart.type == dvq::ChartType::kScatter ||
                         chart.type == dvq::ChartType::kGroupingScatter;
  if (numeric_x) {
    double x_min = rows[0][0].AsDouble();
    double x_max = x_min;
    for (std::size_t i = 0; i < shown; ++i) {
      x_min = std::min(x_min, rows[i][0].AsDouble());
      x_max = std::max(x_max, rows[i][0].AsDouble());
    }
    if (x_max == x_min) x_max = x_min + 1.0;
    auto x_pos = [&](double v) {
      return frame.x0 +
             (v - x_min) / (x_max - x_min) * (frame.x1 - frame.x0);
    };
    DrawAxes(&svg, frame, y_min, y_max, chart.x_label, chart.y_label);
    for (std::size_t i = 0; i < shown; ++i) {
      std::size_t color = has_series ? series_index(rows[i][2]) : 0;
      svg += "<circle cx='" + Num(x_pos(rows[i][0].AsDouble())) + "' cy='" +
             Num(y_pos(rows[i][1].AsDouble())) + "' r='4' fill='" +
             kPalette[color % 8] + "' fill-opacity='0.8'/>\n";
    }
    if (has_series) DrawLegend(&svg, options, series);
    svg += "</svg>\n";
    return svg;
  }

  // Categorical x: distinct labels in first-seen order.
  std::vector<std::string> categories;
  std::map<std::string, std::size_t> category_index;
  for (std::size_t i = 0; i < shown; ++i) {
    std::string label = rows[i][0].ToString();
    if (category_index.emplace(label, categories.size()).second) {
      categories.push_back(label);
    }
  }
  double slot = (frame.x1 - frame.x0) / static_cast<double>(
                                            std::max<std::size_t>(
                                                1, categories.size()));
  auto slot_center = [&](std::size_t i) {
    return frame.x0 + slot * (static_cast<double>(i) + 0.5);
  };
  DrawAxes(&svg, frame, y_min, y_max, chart.x_label, chart.y_label);
  for (std::size_t i = 0; i < categories.size(); ++i) {
    DrawXCategory(&svg, frame, slot_center(i), categories[i]);
  }

  const bool line_family = chart.type == dvq::ChartType::kLine ||
                           chart.type == dvq::ChartType::kGroupingLine;
  if (line_family) {
    std::map<std::size_t, std::string> paths;  // series -> polyline points
    for (std::size_t i = 0; i < shown; ++i) {
      std::size_t color = has_series ? series_index(rows[i][2]) : 0;
      std::size_t cat = category_index[rows[i][0].ToString()];
      paths[color] += Num(slot_center(cat)) + "," +
                      Num(y_pos(rows[i][1].AsDouble())) + " ";
    }
    for (const auto& [color, points] : paths) {
      svg += "<polyline points='" + points + "' fill='none' stroke='" +
             kPalette[color % 8] + "' stroke-width='2'/>\n";
    }
  } else {
    // Bar family. Stacked bars accumulate per category.
    std::map<std::size_t, double> stack_base;
    for (std::size_t i = 0; i < shown; ++i) {
      std::size_t cat = category_index[rows[i][0].ToString()];
      std::size_t color = has_series ? series_index(rows[i][2]) : 0;
      double value = rows[i][1].AsDouble();
      double base = chart.type == dvq::ChartType::kStackedBar
                        ? stack_base[cat]
                        : 0.0;
      double top = y_pos(base + std::max(0.0, value));
      double bottom = y_pos(base);
      double width = slot * 0.7;
      svg += "<rect x='" + Num(slot_center(cat) - width / 2) + "' y='" +
             Num(top) + "' width='" + Num(width) + "' height='" +
             Num(std::max(0.0, bottom - top)) + "' fill='" +
             kPalette[color % 8] + "'/>\n";
      if (chart.type == dvq::ChartType::kStackedBar) {
        stack_base[cat] = base + std::max(0.0, value);
      }
    }
  }
  if (has_series) DrawLegend(&svg, options, series);
  if (rows.size() > shown) {
    svg += "<text x='" + Num(frame.x1) + "' y='" + Num(frame.y0 - 6) +
           "' font-size='10' text-anchor='end' fill='#666'>(" +
           std::to_string(rows.size() - shown) + " more)</text>\n";
  }
  svg += "</svg>\n";
  return svg;
}

}  // namespace gred::viz
