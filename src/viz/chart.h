#ifndef GREDVIS_VIZ_CHART_H_
#define GREDVIS_VIZ_CHART_H_

#include <string>

#include "dvq/ast.h"
#include "exec/executor.h"
#include "storage/table.h"
#include "util/json.h"
#include "util/status.h"

namespace gred::viz {

/// A fully materialized chart: the executed data plus presentation
/// metadata derived from the DVQ.
struct Chart {
  dvq::ChartType type = dvq::ChartType::kBar;
  std::string title;
  std::string x_label;
  std::string y_label;
  std::string series_label;  // grouped charts only
  exec::ResultSet data;      // column 0 = x, 1 = y, [2 = series]
};

/// Executes the DVQ against the database and assembles the chart.
/// Fails (no chart is produced) when the DVQ references unknown schema —
/// the paper's "no chart being shown" failure mode.
Result<Chart> BuildChart(const dvq::DVQ& query,
                         const storage::DatabaseData& db);

/// Guarded variant: the query executes under `guard` (nullptr =
/// unguarded, identical to the overload above). A tripped budget or a
/// cancellation surfaces as the executor's typed kResourceExhausted /
/// kCancelled — the serving layer's per-request SLO enforcement.
Result<Chart> BuildChart(const dvq::DVQ& query,
                         const storage::DatabaseData& db,
                         ExecContext* guard);

/// Emits a Vega-Lite v5 specification with inline data values.
json::Value ToVegaLite(const Chart& chart);

/// Renders a terminal chart: horizontal bars for bar/pie families,
/// a dot grid for line/scatter. `width` bounds the plot area.
std::string RenderAscii(const Chart& chart, std::size_t width = 60,
                        std::size_t max_rows = 16);

}  // namespace gred::viz

#endif  // GREDVIS_VIZ_CHART_H_
