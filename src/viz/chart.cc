#include "viz/chart.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace gred::viz {

Result<Chart> BuildChart(const dvq::DVQ& query,
                         const storage::DatabaseData& db) {
  return BuildChart(query, db, nullptr);
}

Result<Chart> BuildChart(const dvq::DVQ& query,
                         const storage::DatabaseData& db,
                         ExecContext* guard) {
  exec::ExecOptions options;
  options.context = guard;
  GRED_ASSIGN_OR_RETURN(exec::ResultSet data,
                        exec::Execute(query, db, options));
  if (data.num_columns() < 2) {
    return Status::ExecutionError("a chart needs an x and a y column");
  }
  Chart chart;
  chart.type = query.chart;
  chart.title = dvq::ChartTypeName(query.chart) + std::string(" of ") +
                data.column_names[1] + " by " + data.column_names[0];
  chart.x_label = data.column_names[0];
  chart.y_label = data.column_names[1];
  if (data.num_columns() >= 3) chart.series_label = data.column_names[2];
  chart.data = std::move(data);
  return chart;
}

namespace {

const char* VegaMark(dvq::ChartType type) {
  switch (type) {
    case dvq::ChartType::kBar:
    case dvq::ChartType::kStackedBar:
      return "bar";
    case dvq::ChartType::kPie:
      return "arc";
    case dvq::ChartType::kLine:
    case dvq::ChartType::kGroupingLine:
      return "line";
    case dvq::ChartType::kScatter:
    case dvq::ChartType::kGroupingScatter:
      return "point";
  }
  return "bar";
}

json::Value ValueToJson(const storage::Value& v) {
  if (v.is_null()) return json::Value::Null();
  if (v.is_int()) return json::Value::Int(v.int_value());
  if (v.is_real()) return json::Value::Number(v.real_value());
  return json::Value::Str(v.text_value());
}

}  // namespace

json::Value ToVegaLite(const Chart& chart) {
  json::Value spec = json::Value::Object();
  spec.Set("$schema",
           json::Value::Str(
               "https://vega.github.io/schema/vega-lite/v5.json"));
  spec.Set("title", json::Value::Str(chart.title));
  spec.Set("mark", json::Value::Str(VegaMark(chart.type)));

  json::Value values = json::Value::Array();
  for (const auto& row : chart.data.rows) {
    json::Value item = json::Value::Object();
    item.Set("x", ValueToJson(row[0]));
    item.Set("y", ValueToJson(row[1]));
    if (row.size() >= 3 && !chart.series_label.empty()) {
      item.Set("series", ValueToJson(row[2]));
    }
    values.Append(std::move(item));
  }
  json::Value data = json::Value::Object();
  data.Set("values", std::move(values));
  spec.Set("data", std::move(data));

  json::Value encoding = json::Value::Object();
  const bool x_quant = chart.type == dvq::ChartType::kScatter ||
                       chart.type == dvq::ChartType::kGroupingScatter;
  if (chart.type == dvq::ChartType::kPie) {
    json::Value theta = json::Value::Object();
    theta.Set("field", json::Value::Str("y"));
    theta.Set("type", json::Value::Str("quantitative"));
    encoding.Set("theta", std::move(theta));
    json::Value color = json::Value::Object();
    color.Set("field", json::Value::Str("x"));
    color.Set("type", json::Value::Str("nominal"));
    color.Set("title", json::Value::Str(chart.x_label));
    encoding.Set("color", std::move(color));
  } else {
    json::Value x = json::Value::Object();
    x.Set("field", json::Value::Str("x"));
    x.Set("type",
          json::Value::Str(x_quant ? "quantitative" : "nominal"));
    x.Set("title", json::Value::Str(chart.x_label));
    x.Set("sort", json::Value::Null());  // preserve DVQ ordering
    encoding.Set("x", std::move(x));
    json::Value y = json::Value::Object();
    y.Set("field", json::Value::Str("y"));
    y.Set("type", json::Value::Str("quantitative"));
    y.Set("title", json::Value::Str(chart.y_label));
    encoding.Set("y", std::move(y));
    if (!chart.series_label.empty()) {
      json::Value color = json::Value::Object();
      color.Set("field", json::Value::Str("series"));
      color.Set("type", json::Value::Str("nominal"));
      color.Set("title", json::Value::Str(chart.series_label));
      encoding.Set("color", std::move(color));
    }
  }
  spec.Set("encoding", std::move(encoding));
  return spec;
}

std::string RenderAscii(const Chart& chart, std::size_t width,
                        std::size_t max_rows) {
  std::string out = chart.title + "\n";
  const auto& rows = chart.data.rows;
  if (rows.empty()) return out + "(no data)\n";
  const std::size_t shown = std::min(max_rows, rows.size());

  const bool bar_family = chart.type == dvq::ChartType::kBar ||
                          chart.type == dvq::ChartType::kStackedBar ||
                          chart.type == dvq::ChartType::kPie;
  if (bar_family) {
    // Horizontal bars scaled to the max |y|.
    double max_y = 0.0;
    std::size_t label_width = 0;
    for (std::size_t i = 0; i < shown; ++i) {
      max_y = std::max(max_y, std::fabs(rows[i][1].AsDouble()));
      label_width = std::max(label_width, rows[i][0].ToString().size());
    }
    label_width = std::min<std::size_t>(label_width, 18);
    for (std::size_t i = 0; i < shown; ++i) {
      std::string label = rows[i][0].ToString();
      if (label.size() > label_width) label.resize(label_width);
      label.append(label_width - label.size(), ' ');
      double y = rows[i][1].AsDouble();
      std::size_t bars =
          max_y > 0.0 ? static_cast<std::size_t>(
                            std::round(std::fabs(y) / max_y *
                                       static_cast<double>(width)))
                      : 0;
      out += label + " |" + std::string(bars, '#') + " " +
             rows[i][1].ToString();
      if (rows[i].size() >= 3 && !chart.series_label.empty()) {
        out += "  [" + rows[i][2].ToString() + "]";
      }
      out += "\n";
    }
  } else {
    // Dot grid: x ascending across columns, y scaled down rows.
    const std::size_t height = 12;
    double min_y = rows[0][1].AsDouble();
    double max_y = min_y;
    for (std::size_t i = 0; i < shown; ++i) {
      double y = rows[i][1].AsDouble();
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
    std::vector<std::string> grid(height, std::string(width, ' '));
    for (std::size_t i = 0; i < shown; ++i) {
      std::size_t col =
          shown <= 1 ? 0 : i * (width - 1) / (shown - 1);
      double y = rows[i][1].AsDouble();
      double frac = max_y > min_y ? (y - min_y) / (max_y - min_y) : 0.5;
      std::size_t row_idx = static_cast<std::size_t>(
          std::round((1.0 - frac) * static_cast<double>(height - 1)));
      grid[row_idx][col] = '*';
    }
    out += strings::Format("y: %.6g .. %.6g\n", min_y, max_y);
    for (const std::string& line : grid) out += "|" + line + "\n";
    out += "+" + std::string(width, '-') + "> " + chart.x_label + "\n";
  }
  if (rows.size() > shown) {
    out += strings::Format("... (%zu more rows)\n", rows.size() - shown);
  }
  return out;
}

}  // namespace gred::viz
