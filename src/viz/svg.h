#ifndef GREDVIS_VIZ_SVG_H_
#define GREDVIS_VIZ_SVG_H_

#include <string>

#include "viz/chart.h"

namespace gred::viz {

/// Rendering options for the SVG backend.
struct SvgOptions {
  int width = 640;
  int height = 400;
  int margin_left = 70;
  int margin_bottom = 60;
  int margin_top = 40;
  int margin_right = 20;
  /// Maximum categories/points drawn; the rest are dropped with an
  /// ellipsis note (charts stay readable).
  std::size_t max_items = 40;
};

/// Renders a chart as a standalone SVG document.
///
/// Mark selection follows the chart type: bars (grouped charts stack by
/// series), pie sectors, polylines per series, or points. Axes carry the
/// DVQ's column labels; categorical x values are drawn as rotated tick
/// labels.
std::string RenderSvg(const Chart& chart, const SvgOptions& options = {});

}  // namespace gred::viz

#endif  // GREDVIS_VIZ_SVG_H_
