#ifndef GREDVIS_VIZ_ECHARTS_H_
#define GREDVIS_VIZ_ECHARTS_H_

#include "util/json.h"
#include "viz/chart.h"

namespace gred::viz {

/// Emits an Apache ECharts `option` object for the chart.
///
/// ECharts is one of the declarative visualization languages the paper's
/// introduction motivates DVQ with (alongside Vega-Lite); RGVisNet's own
/// deployment targets it. Mapping:
///   BAR/STACKED BAR -> series type "bar" (stack key set for stacked),
///   PIE             -> series type "pie" with {name,value} data,
///   LINE family     -> series type "line", one series per group,
///   SCATTER family  -> series type "scatter" with [x,y] pairs.
json::Value ToECharts(const Chart& chart);

}  // namespace gred::viz

#endif  // GREDVIS_VIZ_ECHARTS_H_
