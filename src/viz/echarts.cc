#include "viz/echarts.h"

#include <algorithm>
#include <map>
#include <vector>

namespace gred::viz {

namespace {

json::Value ValueToJson(const storage::Value& v) {
  if (v.is_null()) return json::Value::Null();
  if (v.is_int()) return json::Value::Int(v.int_value());
  if (v.is_real()) return json::Value::Number(v.real_value());
  return json::Value::Str(v.text_value());
}

std::vector<std::string> SeriesNames(const Chart& chart) {
  std::vector<std::string> names;
  if (chart.series_label.empty()) return names;
  for (const auto& row : chart.data.rows) {
    if (row.size() < 3) continue;
    std::string name = row[2].ToString();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace

json::Value ToECharts(const Chart& chart) {
  json::Value option = json::Value::Object();
  json::Value title = json::Value::Object();
  title.Set("text", json::Value::Str(chart.title));
  option.Set("title", std::move(title));
  option.Set("tooltip", json::Value::Object());

  const auto& rows = chart.data.rows;
  json::Value series_array = json::Value::Array();

  if (chart.type == dvq::ChartType::kPie) {
    json::Value series = json::Value::Object();
    series.Set("type", json::Value::Str("pie"));
    series.Set("name", json::Value::Str(chart.x_label));
    json::Value data = json::Value::Array();
    for (const auto& row : rows) {
      json::Value item = json::Value::Object();
      item.Set("name", json::Value::Str(row[0].ToString()));
      item.Set("value", ValueToJson(row[1]));
      data.Append(std::move(item));
    }
    series.Set("data", std::move(data));
    series_array.Append(std::move(series));
    option.Set("series", std::move(series_array));
    return option;
  }

  const bool numeric_x = chart.type == dvq::ChartType::kScatter ||
                         chart.type == dvq::ChartType::kGroupingScatter;
  const bool stacked = chart.type == dvq::ChartType::kStackedBar;
  const bool line_family = chart.type == dvq::ChartType::kLine ||
                           chart.type == dvq::ChartType::kGroupingLine;
  const char* mark = line_family ? "line"
                     : numeric_x ? "scatter"
                                 : "bar";

  // Axes.
  json::Value x_axis = json::Value::Object();
  x_axis.Set("type", json::Value::Str(numeric_x ? "value" : "category"));
  x_axis.Set("name", json::Value::Str(chart.x_label));
  std::vector<std::string> categories;
  if (!numeric_x) {
    json::Value cats = json::Value::Array();
    for (const auto& row : rows) {
      std::string label = row[0].ToString();
      if (std::find(categories.begin(), categories.end(), label) ==
          categories.end()) {
        categories.push_back(label);
        cats.Append(json::Value::Str(label));
      }
    }
    x_axis.Set("data", std::move(cats));
  }
  option.Set("xAxis", std::move(x_axis));
  json::Value y_axis = json::Value::Object();
  y_axis.Set("type", json::Value::Str("value"));
  y_axis.Set("name", json::Value::Str(chart.y_label));
  option.Set("yAxis", std::move(y_axis));

  std::vector<std::string> groups = SeriesNames(chart);
  if (groups.empty()) groups.push_back(chart.y_label);
  json::Value legend_data = json::Value::Array();
  for (const std::string& g : groups) {
    legend_data.Append(json::Value::Str(g));
  }
  json::Value legend = json::Value::Object();
  legend.Set("data", std::move(legend_data));
  option.Set("legend", std::move(legend));

  const bool has_series = !chart.series_label.empty() &&
                          chart.data.num_columns() >= 3;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    json::Value series = json::Value::Object();
    series.Set("type", json::Value::Str(mark));
    series.Set("name", json::Value::Str(groups[g]));
    if (stacked) series.Set("stack", json::Value::Str("total"));
    json::Value data = json::Value::Array();
    if (numeric_x) {
      for (const auto& row : rows) {
        if (has_series && row[2].ToString() != groups[g]) continue;
        json::Value point = json::Value::Array();
        point.Append(ValueToJson(row[0]));
        point.Append(ValueToJson(row[1]));
        data.Append(std::move(point));
      }
    } else {
      // Category-aligned values; missing categories are null.
      std::map<std::string, json::Value> by_category;
      for (const auto& row : rows) {
        if (has_series && row[2].ToString() != groups[g]) continue;
        by_category[row[0].ToString()] = ValueToJson(row[1]);
      }
      for (const std::string& cat : categories) {
        auto it = by_category.find(cat);
        data.Append(it == by_category.end() ? json::Value::Null()
                                            : it->second);
      }
    }
    series.Set("data", std::move(data));
    series_array.Append(std::move(series));
  }
  option.Set("series", std::move(series_array));
  return option;
}

}  // namespace gred::viz
