#include "schema/schema.h"

#include <set>

#include "util/strings.h"

namespace gred::schema {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
    case ColumnType::kReal:
      return "Number";
    case ColumnType::kText:
      return "Text";
    case ColumnType::kDate:
      return "Time";
    case ColumnType::kBool:
      return "Bool";
  }
  return "Text";
}

const Column* TableDef::FindColumn(const std::string& name) const {
  for (const Column& c : columns_) {
    if (strings::EqualsIgnoreCase(c.name, name)) return &c;
  }
  return nullptr;
}

std::optional<std::size_t> TableDef::ColumnIndex(
    const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (strings::EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

const TableDef* Database::FindTable(const std::string& name) const {
  for (const TableDef& t : tables_) {
    if (strings::EqualsIgnoreCase(t.name(), name)) return &t;
  }
  return nullptr;
}

TableDef* Database::FindTable(const std::string& name) {
  for (TableDef& t : tables_) {
    if (strings::EqualsIgnoreCase(t.name(), name)) return &t;
  }
  return nullptr;
}

std::pair<const TableDef*, const Column*> Database::FindColumnAnywhere(
    const std::string& name) const {
  for (const TableDef& t : tables_) {
    if (const Column* c = t.FindColumn(name)) return {&t, c};
  }
  return {nullptr, nullptr};
}

bool Database::HasColumn(const std::string& name) const {
  return FindColumnAnywhere(name).second != nullptr;
}

std::vector<std::string> Database::AllColumnNames() const {
  std::vector<std::string> names;
  for (const TableDef& t : tables_) {
    for (const Column& c : t.columns()) names.push_back(c.name);
  }
  return names;
}

std::size_t Database::total_columns() const {
  std::size_t n = 0;
  for (const TableDef& t : tables_) n += t.columns().size();
  return n;
}

std::string Database::RenderSchemaPrompt() const {
  std::string out;
  for (const TableDef& t : tables_) {
    out += "# Table " + t.name() + " , columns = [ *";
    for (const Column& c : t.columns()) {
      out += " , " + c.name;
    }
    out += " ]\n";
  }
  if (!foreign_keys_.empty()) {
    out += "# Foreign_keys = [";
    for (std::size_t i = 0; i < foreign_keys_.size(); ++i) {
      const ForeignKey& fk = foreign_keys_[i];
      if (i > 0) out += " ,";
      out += " " + fk.from_table + "." + fk.from_column + " = " +
             fk.to_table + "." + fk.to_column;
    }
    out += " ]\n";
  }
  return out;
}

Status Database::Validate() const {
  std::set<std::string> table_names;
  for (const TableDef& t : tables_) {
    if (t.columns().empty()) {
      return Status::InvalidArgument("table '" + t.name() +
                                     "' has no columns");
    }
    std::string lower = strings::ToLower(t.name());
    if (!table_names.insert(lower).second) {
      return Status::InvalidArgument("duplicate table name '" + t.name() +
                                     "'");
    }
    std::set<std::string> column_names;
    for (const Column& c : t.columns()) {
      if (!column_names.insert(strings::ToLower(c.name)).second) {
        return Status::InvalidArgument("duplicate column '" + c.name +
                                       "' in table '" + t.name() + "'");
      }
    }
  }
  for (const ForeignKey& fk : foreign_keys_) {
    const TableDef* from = FindTable(fk.from_table);
    const TableDef* to = FindTable(fk.to_table);
    if (from == nullptr || to == nullptr) {
      return Status::InvalidArgument("foreign key references missing table");
    }
    if (from->FindColumn(fk.from_column) == nullptr ||
        to->FindColumn(fk.to_column) == nullptr) {
      return Status::InvalidArgument("foreign key references missing column");
    }
  }
  return Status::OK();
}

const Database* Catalog::FindDatabase(const std::string& name) const {
  for (const Database& db : databases_) {
    if (strings::EqualsIgnoreCase(db.name(), name)) return &db;
  }
  return nullptr;
}

}  // namespace gred::schema
