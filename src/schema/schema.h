#ifndef GREDVIS_SCHEMA_SCHEMA_H_
#define GREDVIS_SCHEMA_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace gred::schema {

/// Logical column type, mirroring the type vocabulary used by nvBench
/// schemas ("number", "text", "time", ...).
enum class ColumnType {
  kInt,
  kReal,
  kText,
  kDate,
  kBool,
};

/// Returns the nvBench-style type name ("Number", "Text", "Time", "Bool").
const char* ColumnTypeName(ColumnType type);

/// A column definition within a table.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kText;
  bool primary_key = false;
};

/// A foreign-key edge `from_table.from_column -> to_table.to_column`.
struct ForeignKey {
  std::string from_table;
  std::string from_column;
  std::string to_table;
  std::string to_column;
};

/// A table definition: name plus ordered columns.
class TableDef {
 public:
  TableDef() = default;
  TableDef(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Column>& columns() const { return columns_; }
  std::vector<Column>& mutable_columns() { return columns_; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// Case-insensitive column lookup; returns nullptr when absent.
  const Column* FindColumn(const std::string& name) const;

  /// Case-insensitive index lookup; nullopt when absent.
  std::optional<std::size_t> ColumnIndex(const std::string& name) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

/// A database: named collection of tables plus foreign keys.
class Database {
 public:
  Database() = default;
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<TableDef>& tables() const { return tables_; }
  std::vector<TableDef>& mutable_tables() { return tables_; }
  void AddTable(TableDef table) { tables_.push_back(std::move(table)); }

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }
  std::vector<ForeignKey>& mutable_foreign_keys() { return foreign_keys_; }
  void AddForeignKey(ForeignKey fk) { foreign_keys_.push_back(std::move(fk)); }

  /// Case-insensitive table lookup; nullptr when absent.
  const TableDef* FindTable(const std::string& name) const;
  TableDef* FindTable(const std::string& name);

  /// Finds a column in any table. When several tables define the name the
  /// first in table order wins (matches DVQ's unqualified-column rules).
  /// Returns {table, column} or {nullptr, nullptr}.
  std::pair<const TableDef*, const Column*> FindColumnAnywhere(
      const std::string& name) const;

  /// True if some table contains `name` (case-insensitive).
  bool HasColumn(const std::string& name) const;

  /// Collects every column name across all tables, in table order.
  std::vector<std::string> AllColumnNames() const;

  std::size_t total_columns() const;

  /// Renders the database in the prompt format of Appendix C:
  ///   # Table foo, columns = [ * , a , b ]
  ///   # Foreign_keys = [ foo.a = bar.a ]
  std::string RenderSchemaPrompt() const;

  /// Structural validation: FK endpoints exist, no duplicate table names,
  /// every table has at least one column.
  Status Validate() const;

 private:
  std::string name_;
  std::vector<TableDef> tables_;
  std::vector<ForeignKey> foreign_keys_;
};

/// An ordered collection of databases addressable by name.
class Catalog {
 public:
  void AddDatabase(Database db) { databases_.push_back(std::move(db)); }

  const std::vector<Database>& databases() const { return databases_; }
  std::vector<Database>& mutable_databases() { return databases_; }

  /// Case-insensitive lookup; nullptr when absent.
  const Database* FindDatabase(const std::string& name) const;

  std::size_t size() const { return databases_.size(); }

 private:
  std::vector<Database> databases_;
};

}  // namespace gred::schema

#endif  // GREDVIS_SCHEMA_SCHEMA_H_
