#include "dvq/lexer.h"

#include <cctype>
#include <array>

#include "util/strings.h"

namespace gred::dvq {

namespace {

constexpr std::array<const char*, 36> kKeywords = {
    "VISUALIZE", "SELECT",  "FROM",   "WHERE",  "GROUP",   "BY",
    "ORDER",     "ASC",     "DESC",   "LIMIT",  "BIN",     "JOIN",
    "ON",        "AS",      "AND",    "OR",     "NOT",     "IN",
    "IS",        "NULL",    "LIKE",   "COUNT",  "SUM",     "AVG",
    "MIN",       "MAX",     "DISTINCT", "BAR",  "PIE",     "LINE",
    "SCATTER",   "STACKED", "GROUPING", "YEAR", "MONTH",   "WEEKDAY",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.';
}

}  // namespace

bool IsReservedKeyword(const std::string& upper_word) {
  for (const char* kw : kKeywords) {
    if (upper_word == kw) return true;
  }
  // DAY is a bin unit but also a plausible column name; treat it as a
  // keyword only in BIN context, which the parser handles by accepting an
  // identifier there as well.
  return false;
}

Result<std::vector<Token>> Lex(const std::string& input) {
  if (input.size() > kMaxLexInputBytes) {
    return Status::InvalidArgument(strings::Format(
        "input of %zu bytes exceeds the %zu-byte lexer cap", input.size(),
        kMaxLexInputBytes));
  }
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word = input.substr(start, i - start);
      std::string upper = strings::ToUpper(word);
      if (IsReservedKeyword(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = TokenKind::kIdentifier;
        tok.text = word;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])) != 0 &&
         (tokens.empty() || tokens.back().kind == TokenKind::kSymbol ||
          tokens.back().kind == TokenKind::kKeyword))) {
      std::size_t start = i;
      if (c == '-') ++i;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) != 0 ||
                       (input[i] == '.' && !seen_dot))) {
        if (input[i] == '.') seen_dot = true;
        ++i;
      }
      tok.kind = TokenKind::kNumber;
      tok.text = input.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      std::size_t start = ++i;
      while (i < n && input[i] != quote) ++i;
      if (i >= n) {
        return Status::ParseError(
            strings::Format("unterminated string literal at offset %zu",
                            tok.offset));
      }
      tok.kind = TokenKind::kString;
      tok.text = input.substr(start, i - start);
      ++i;  // closing quote
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto match2 = [&](const char* op) {
      return i + 1 < n && input[i] == op[0] && input[i + 1] == op[1];
    };
    if (match2("!=") || match2("<=") || match2(">=") || match2("<>")) {
      tok.kind = TokenKind::kSymbol;
      tok.text = input.substr(i, 2);
      if (tok.text == "<>") tok.text = "!=";
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '*' || c == '=' ||
        c == '<' || c == '>' || c == ';') {
      if (c == ';') {
        ++i;
        continue;  // trailing semicolons are tolerated and dropped
      }
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError(strings::Format(
        "unexpected character '%c' at offset %zu", c, tok.offset));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace gred::dvq
