#ifndef GREDVIS_DVQ_AST_H_
#define GREDVIS_DVQ_AST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace gred::dvq {

/// Chart types supported by nvBench DVQs (Figure 2 of the paper).
enum class ChartType {
  kBar,
  kPie,
  kLine,
  kScatter,
  kStackedBar,
  kGroupingLine,
  kGroupingScatter,
};

/// Returns the DVQ surface form, e.g. "BAR", "STACKED BAR".
std::string ChartTypeName(ChartType type);

/// Parses a chart-type surface form; returns nullopt for unknown names.
std::optional<ChartType> ChartTypeFromName(const std::string& name);

/// Aggregate functions usable in the SELECT list / ORDER BY.
enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

std::string AggFuncName(AggFunc f);

/// A column reference, optionally qualified by table name or alias.
/// `column == "*"` denotes the star target (only valid under COUNT).
struct ColumnRef {
  std::string table;   // empty when unqualified
  std::string column;

  /// Case-insensitive equality on both parts.
  bool EqualsIgnoreCase(const ColumnRef& other) const;

  /// "t.col" or "col".
  std::string ToString() const;
};

/// One SELECT-list entry: an optional aggregate around a column.
struct SelectExpr {
  AggFunc agg = AggFunc::kNone;
  bool distinct = false;
  ColumnRef col;

  bool EqualsIgnoreCase(const SelectExpr& other) const;
  std::string ToString() const;
};

/// Comparison operators usable in WHERE predicates.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,
  kNotLike,
  kIsNull,
  kIsNotNull,
  kIn,
  kNotIn,
};

std::string CompareOpName(CompareOp op);

/// A literal constant in a predicate.
struct Literal {
  enum class Kind { kInt, kReal, kString } kind = Kind::kInt;
  std::int64_t int_value = 0;
  double real_value = 0.0;
  std::string string_value;

  static Literal Int(std::int64_t v);
  static Literal Real(double v);
  static Literal Str(std::string v);

  bool Equals(const Literal& other) const;
  /// Canonical DVQ rendering; strings get double quotes.
  std::string ToString() const;
};

struct Query;  // forward declaration for scalar subqueries

/// An atomic predicate `col OP rhs`. The right-hand side is exactly one of
/// a literal, an IN-list, nothing (IS [NOT] NULL) or a scalar subquery.
/// Subqueries are shared immutable trees (never mutated after parse).
struct Predicate {
  ColumnRef col;
  CompareOp op = CompareOp::kEq;
  std::optional<Literal> literal;
  std::vector<Literal> in_list;
  std::shared_ptr<const Query> subquery;

  std::string ToString() const;
};

enum class LogicalOp { kAnd, kOr };

/// A left-associative chain: preds[0] (ops[0]) preds[1] (ops[1]) ...
struct Condition {
  std::vector<Predicate> predicates;
  std::vector<LogicalOp> connectors;  // size == predicates.size() - 1

  std::string ToString() const;
};

/// An equi-join clause `JOIN table [AS alias] ON left = right`.
struct JoinClause {
  std::string table;
  std::string alias;  // empty when none
  ColumnRef left;
  ColumnRef right;

  std::string ToString() const;
};

/// Temporal binning units supported by `BIN col BY unit`.
enum class BinUnit { kYear, kMonth, kDay, kWeekday };

std::string BinUnitName(BinUnit unit);

/// `BIN col BY unit` data-transformation clause.
struct BinClause {
  ColumnRef col;
  BinUnit unit = BinUnit::kYear;

  std::string ToString() const;
};

/// ORDER BY entry: an expression (possibly aggregated) plus direction.
struct OrderByClause {
  SelectExpr expr;
  bool descending = false;

  std::string ToString() const;
};

/// The relational core of a DVQ (everything after the chart type).
struct Query {
  std::vector<SelectExpr> select;   // 2 entries (x,y), 3 for grouped charts
  std::string from_table;
  std::string from_alias;           // empty when none
  std::vector<JoinClause> joins;
  std::optional<Condition> where;
  std::vector<ColumnRef> group_by;
  std::optional<OrderByClause> order_by;
  std::optional<std::int64_t> limit;
  std::optional<BinClause> bin;

  std::string ToString() const;
};

/// A complete data-visualization query: `Visualize CHART <query>`.
struct DVQ {
  ChartType chart = ChartType::kBar;
  Query query;

  /// Pretty-prints in the corpus surface style (keywords upper-case,
  /// identifiers verbatim).
  std::string ToString() const;

  /// Canonical form for equality: identifiers lower-cased, aliases
  /// resolved-as-written, spacing normalized. Two DVQs are semantically
  /// "exact match" (paper's Overall Accuracy) iff canonical forms match.
  std::string Canonical() const;
};

/// Lower-cases identifiers throughout a copy of `q` (helper for
/// Canonical() and for component comparison).
Query LowercaseIdentifiers(const Query& q);

/// Collects every column reference in the query (select, where, group,
/// order, bin, join keys), pre-order. Star targets are included.
std::vector<ColumnRef> CollectColumnRefs(const Query& q);

/// Applies `fn` to every column reference in `q` (in place).
void TransformColumnRefs(Query* q,
                         const std::function<void(ColumnRef*)>& fn);

/// Like TransformColumnRefs but skips join ON keys (which are resolved
/// by different rules — foreign keys, not mentions).
void TransformNonJoinColumnRefs(Query* q,
                                const std::function<void(ColumnRef*)>& fn);

/// Collects referenced table names (FROM + JOINs + subqueries).
std::vector<std::string> CollectTableNames(const Query& q);

}  // namespace gred::dvq

#endif  // GREDVIS_DVQ_AST_H_
