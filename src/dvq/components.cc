#include "dvq/components.h"

#include <algorithm>

#include "dvq/normalize.h"
#include "util/strings.h"

namespace gred::dvq {

namespace {

std::string AxisFingerprint(const Query& q) {
  std::string out;
  for (const SelectExpr& e : q.select) {
    out += e.ToString();
    out += ";";
  }
  return out;
}

std::string DataFingerprint(const Query& q) {
  std::string out = "FROM " + q.from_table + ";";
  // Joins are an unordered set: JOIN a then b reads the same data as b
  // then a. Each join key pair is itself order-normalized.
  std::vector<std::string> joins;
  for (const JoinClause& j : q.joins) {
    std::string l = j.left.ToString();
    std::string r = j.right.ToString();
    if (r < l) std::swap(l, r);
    joins.push_back(j.table + ":" + l + "=" + r);
  }
  std::sort(joins.begin(), joins.end());
  for (const std::string& j : joins) out += "JOIN " + j + ";";
  if (q.where.has_value()) out += "WHERE " + q.where->ToString() + ";";
  if (!q.group_by.empty()) {
    out += "GROUP";
    for (const ColumnRef& g : q.group_by) out += " " + g.ToString();
    out += ";";
  }
  if (q.order_by.has_value()) out += q.order_by->ToString() + ";";
  if (q.limit.has_value()) {
    out += strings::Format("LIMIT %lld;", static_cast<long long>(*q.limit));
  }
  if (q.bin.has_value()) out += q.bin->ToString() + ";";
  return out;
}

}  // namespace

Components ExtractComponents(const DVQ& d) {
  Components c;
  c.chart = d.chart;
  Query normalized = NormalizeForComparison(d.query);
  c.axis_fingerprint = AxisFingerprint(normalized);
  c.data_fingerprint = DataFingerprint(normalized);
  return c;
}

bool VisMatch(const DVQ& a, const DVQ& b) { return a.chart == b.chart; }

bool AxisMatch(const DVQ& a, const DVQ& b) {
  return ExtractComponents(a).axis_fingerprint ==
         ExtractComponents(b).axis_fingerprint;
}

bool DataMatch(const DVQ& a, const DVQ& b) {
  return ExtractComponents(a).data_fingerprint ==
         ExtractComponents(b).data_fingerprint;
}

bool OverallMatch(const DVQ& a, const DVQ& b) {
  Components ca = ExtractComponents(a);
  Components cb = ExtractComponents(b);
  return ca.chart == cb.chart && ca.axis_fingerprint == cb.axis_fingerprint &&
         ca.data_fingerprint == cb.data_fingerprint;
}

}  // namespace gred::dvq
