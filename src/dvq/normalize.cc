#include "dvq/normalize.h"

#include <map>
#include <string>

#include "util/strings.h"

namespace gred::dvq {

Query ResolveAliases(const Query& q) {
  Query out = q;
  std::map<std::string, std::string> alias_to_table;
  if (!out.from_alias.empty()) {
    alias_to_table[strings::ToLower(out.from_alias)] = out.from_table;
  }
  for (const JoinClause& j : out.joins) {
    if (!j.alias.empty()) {
      alias_to_table[strings::ToLower(j.alias)] = j.table;
    }
  }
  TransformColumnRefs(&out, [&](ColumnRef* ref) {
    if (ref->table.empty()) return;
    auto it = alias_to_table.find(strings::ToLower(ref->table));
    if (it != alias_to_table.end()) ref->table = it->second;
  });
  out.from_alias.clear();
  for (JoinClause& j : out.joins) j.alias.clear();
  if (out.where.has_value()) {
    for (Predicate& p : out.where->predicates) {
      if (p.subquery != nullptr) {
        p.subquery =
            std::make_shared<const Query>(ResolveAliases(*p.subquery));
      }
    }
  }
  return out;
}

Query DropQualifiers(const Query& q) {
  Query out = q;
  // Join keys keep their qualifiers; everything else drops them. We clear
  // via a second pass because TransformColumnRefs visits join keys too.
  TransformColumnRefs(&out, [](ColumnRef* ref) { ref->table.clear(); });
  for (std::size_t i = 0; i < out.joins.size(); ++i) {
    out.joins[i].left = q.joins[i].left;
    out.joins[i].right = q.joins[i].right;
  }
  if (out.where.has_value()) {
    for (Predicate& p : out.where->predicates) {
      if (p.subquery != nullptr) {
        p.subquery =
            std::make_shared<const Query>(DropQualifiers(*p.subquery));
      }
    }
  }
  return out;
}

Query NormalizeForComparison(const Query& q) {
  return LowercaseIdentifiers(DropQualifiers(ResolveAliases(q)));
}

DVQ NormalizeForComparison(const DVQ& d) {
  DVQ out;
  out.chart = d.chart;
  out.query = NormalizeForComparison(d.query);
  return out;
}

}  // namespace gred::dvq
