#ifndef GREDVIS_DVQ_NORMALIZE_H_
#define GREDVIS_DVQ_NORMALIZE_H_

#include "dvq/ast.h"

namespace gred::dvq {

/// Rewrites table aliases to the underlying table names throughout the
/// query (column qualifiers `T1.x` become `employees.x`, alias
/// declarations are removed). Subqueries are resolved recursively with
/// their own alias scope.
Query ResolveAliases(const Query& q);

/// Removes table qualifiers from every column reference except join keys
/// (where the qualifier is load-bearing). Used for component comparison,
/// where `employees.salary` and `salary` are the same axis.
Query DropQualifiers(const Query& q);

/// Full comparison normalization: ResolveAliases + DropQualifiers +
/// lower-cased identifiers. Deliberately does NOT canonicalize
/// programming-style choices (COUNT(col) vs COUNT(*), IS NOT NULL vs
/// != "null", subquery vs JOIN): those differences are exactly what the
/// paper's exact-match metric penalizes and what the Retuner repairs.
Query NormalizeForComparison(const Query& q);

/// Normalizes a whole DVQ (chart type untouched, query normalized).
DVQ NormalizeForComparison(const DVQ& d);

}  // namespace gred::dvq

#endif  // GREDVIS_DVQ_NORMALIZE_H_
