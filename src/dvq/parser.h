#ifndef GREDVIS_DVQ_PARSER_H_
#define GREDVIS_DVQ_PARSER_H_

#include <string>

#include "dvq/ast.h"
#include "util/resource_guard.h"
#include "util/status.h"

namespace gred::dvq {

/// Maximum subquery nesting depth Parse accepts. Each scalar subquery
/// (`col = (SELECT ...)`) recurses one level; deeper input returns
/// kParseError instead of recursing toward stack exhaustion. Real nvBench
/// DVQs nest at most one level, so 16 is already generous.
inline constexpr int kMaxParseDepth = 16;

/// Parses a DVQ string into an AST.
///
/// The grammar follows the nvBench / Vega-Zero surface language:
///
///   Visualize CHART SELECT e1 , e2 [, e3] FROM t [AS a] {JOIN t2 [AS a2]
///   ON c1 = c2} [WHERE pred {(AND|OR) pred}] [GROUP BY c {, c}]
///   [ORDER BY expr [ASC|DESC]] [LIMIT n] [BIN c BY unit]
///
/// Predicates support =, !=, <, <=, >, >=, [NOT] LIKE, IS [NOT] NULL,
/// [NOT] IN (lit, ...), and scalar subqueries `col = (SELECT ...)`.
///
/// Input is bounded on two axes regardless of `guard`: the lexer rejects
/// inputs over kMaxLexInputBytes (kInvalidArgument) and subquery nesting
/// past kMaxParseDepth fails with kParseError.
Result<DVQ> Parse(const std::string& input);

/// Guarded variant: additionally charges `guard` (when non-null) one
/// accounted tick per token before parsing, so a caller with a
/// per-stage tick budget (core::Gred) can bound how much parse work an
/// oversized LLM completion may consume. A tripped budget returns
/// kResourceExhausted (kCancelled after RequestCancel()).
Result<DVQ> Parse(const std::string& input, ExecContext* guard);

/// Parses just the relational core (no "Visualize CHART" prefix); used for
/// subqueries and tests.
Result<Query> ParseQuery(const std::string& input);

}  // namespace gred::dvq

#endif  // GREDVIS_DVQ_PARSER_H_
