#ifndef GREDVIS_DVQ_PARSER_H_
#define GREDVIS_DVQ_PARSER_H_

#include <string>

#include "dvq/ast.h"
#include "util/status.h"

namespace gred::dvq {

/// Parses a DVQ string into an AST.
///
/// The grammar follows the nvBench / Vega-Zero surface language:
///
///   Visualize CHART SELECT e1 , e2 [, e3] FROM t [AS a] {JOIN t2 [AS a2]
///   ON c1 = c2} [WHERE pred {(AND|OR) pred}] [GROUP BY c {, c}]
///   [ORDER BY expr [ASC|DESC]] [LIMIT n] [BIN c BY unit]
///
/// Predicates support =, !=, <, <=, >, >=, [NOT] LIKE, IS [NOT] NULL,
/// [NOT] IN (lit, ...), and scalar subqueries `col = (SELECT ...)`.
Result<DVQ> Parse(const std::string& input);

/// Parses just the relational core (no "Visualize CHART" prefix); used for
/// subqueries and tests.
Result<Query> ParseQuery(const std::string& input);

}  // namespace gred::dvq

#endif  // GREDVIS_DVQ_PARSER_H_
