#include "dvq/ast.h"

#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace gred::dvq {

std::string ChartTypeName(ChartType type) {
  switch (type) {
    case ChartType::kBar:
      return "BAR";
    case ChartType::kPie:
      return "PIE";
    case ChartType::kLine:
      return "LINE";
    case ChartType::kScatter:
      return "SCATTER";
    case ChartType::kStackedBar:
      return "STACKED BAR";
    case ChartType::kGroupingLine:
      return "GROUPING LINE";
    case ChartType::kGroupingScatter:
      return "GROUPING SCATTER";
  }
  return "BAR";
}

std::optional<ChartType> ChartTypeFromName(const std::string& name) {
  std::string upper = strings::ToUpper(strings::Trim(name));
  if (upper == "BAR") return ChartType::kBar;
  if (upper == "PIE") return ChartType::kPie;
  if (upper == "LINE") return ChartType::kLine;
  if (upper == "SCATTER") return ChartType::kScatter;
  if (upper == "STACKED BAR") return ChartType::kStackedBar;
  if (upper == "GROUPING LINE") return ChartType::kGroupingLine;
  if (upper == "GROUPING SCATTER") return ChartType::kGroupingScatter;
  return std::nullopt;
}

std::string AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "";
}

bool ColumnRef::EqualsIgnoreCase(const ColumnRef& other) const {
  return strings::EqualsIgnoreCase(table, other.table) &&
         strings::EqualsIgnoreCase(column, other.column);
}

std::string ColumnRef::ToString() const {
  if (table.empty()) return column;
  return table + "." + column;
}

bool SelectExpr::EqualsIgnoreCase(const SelectExpr& other) const {
  return agg == other.agg && distinct == other.distinct &&
         col.EqualsIgnoreCase(other.col);
}

std::string SelectExpr::ToString() const {
  if (agg == AggFunc::kNone) return col.ToString();
  std::string out = AggFuncName(agg) + "(";
  if (distinct) out += "DISTINCT ";
  out += col.ToString();
  out += ")";
  return out;
}

std::string CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLike:
      return "LIKE";
    case CompareOp::kNotLike:
      return "NOT LIKE";
    case CompareOp::kIsNull:
      return "IS NULL";
    case CompareOp::kIsNotNull:
      return "IS NOT NULL";
    case CompareOp::kIn:
      return "IN";
    case CompareOp::kNotIn:
      return "NOT IN";
  }
  return "=";
}

Literal Literal::Int(std::int64_t v) {
  Literal l;
  l.kind = Kind::kInt;
  l.int_value = v;
  return l;
}

Literal Literal::Real(double v) {
  Literal l;
  l.kind = Kind::kReal;
  l.real_value = v;
  return l;
}

Literal Literal::Str(std::string v) {
  Literal l;
  l.kind = Kind::kString;
  l.string_value = std::move(v);
  return l;
}

bool Literal::Equals(const Literal& other) const {
  if (kind == Kind::kString || other.kind == Kind::kString) {
    return kind == other.kind && string_value == other.string_value;
  }
  // Numeric literals compare by value across int/real.
  double a = kind == Kind::kInt ? static_cast<double>(int_value) : real_value;
  double b = other.kind == Kind::kInt ? static_cast<double>(other.int_value)
                                      : other.real_value;
  return a == b;
}

std::string Literal::ToString() const {
  switch (kind) {
    case Kind::kInt:
      return strings::Format("%lld", static_cast<long long>(int_value));
    case Kind::kReal: {
      if (!std::isfinite(real_value)) return strings::Format("%g", real_value);
      // Shortest plain-decimal form that round-trips. The DVQ lexer has
      // no exponent notation, so "%g"-style "1e+06" output broke the
      // parse→print→parse fixpoint (and "1.23457e+07" silently dropped
      // precision); scanning precisions keeps "0.5" printing as "0.5".
      for (int precision = 0; precision <= 17; ++precision) {
        std::string s = strings::Format("%.*f", precision, real_value);
        if (std::strtod(s.c_str(), nullptr) == real_value) return s;
      }
      return strings::Format("%.17f", real_value);
    }
    case Kind::kString:
      return "\"" + string_value + "\"";
  }
  return "0";
}

std::string Predicate::ToString() const {
  std::string out = col.ToString();
  switch (op) {
    case CompareOp::kIsNull:
    case CompareOp::kIsNotNull:
      out += " " + CompareOpName(op);
      return out;
    case CompareOp::kIn:
    case CompareOp::kNotIn: {
      out += " " + CompareOpName(op) + " (";
      for (std::size_t i = 0; i < in_list.size(); ++i) {
        if (i > 0) out += " , ";
        out += in_list[i].ToString();
      }
      out += ")";
      return out;
    }
    default:
      break;
  }
  out += " " + CompareOpName(op) + " ";
  if (subquery != nullptr) {
    out += "(" + subquery->ToString() + ")";
  } else if (literal.has_value()) {
    out += literal->ToString();
  }
  return out;
}

std::string Condition::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) {
      out += connectors[i - 1] == LogicalOp::kAnd ? " AND " : " OR ";
    }
    out += predicates[i].ToString();
  }
  return out;
}

std::string JoinClause::ToString() const {
  std::string out = "JOIN " + table;
  if (!alias.empty()) out += " AS " + alias;
  out += " ON " + left.ToString() + " = " + right.ToString();
  return out;
}

std::string BinUnitName(BinUnit unit) {
  switch (unit) {
    case BinUnit::kYear:
      return "YEAR";
    case BinUnit::kMonth:
      return "MONTH";
    case BinUnit::kDay:
      return "DAY";
    case BinUnit::kWeekday:
      return "WEEKDAY";
  }
  return "YEAR";
}

std::string BinClause::ToString() const {
  return "BIN " + col.ToString() + " BY " + BinUnitName(unit);
}

std::string OrderByClause::ToString() const {
  return "ORDER BY " + expr.ToString() + (descending ? " DESC" : " ASC");
}

std::string Query::ToString() const {
  std::string out = "SELECT ";
  for (std::size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += " , ";
    out += select[i].ToString();
  }
  out += " FROM " + from_table;
  if (!from_alias.empty()) out += " AS " + from_alias;
  for (const JoinClause& j : joins) out += " " + j.ToString();
  if (where.has_value()) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (std::size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += " , ";
      out += group_by[i].ToString();
    }
  }
  if (order_by.has_value()) out += " " + order_by->ToString();
  if (limit.has_value()) {
    out += strings::Format(" LIMIT %lld", static_cast<long long>(*limit));
  }
  if (bin.has_value()) out += " " + bin->ToString();
  return out;
}

std::string DVQ::ToString() const {
  return "Visualize " + ChartTypeName(chart) + " " + query.ToString();
}

namespace {

void LowercaseRef(ColumnRef* ref) {
  ref->table = strings::ToLower(ref->table);
  ref->column = strings::ToLower(ref->column);
}

}  // namespace

Query LowercaseIdentifiers(const Query& q) {
  Query out = q;
  out.from_table = strings::ToLower(out.from_table);
  out.from_alias = strings::ToLower(out.from_alias);
  for (JoinClause& j : out.joins) {
    j.table = strings::ToLower(j.table);
    j.alias = strings::ToLower(j.alias);
  }
  TransformColumnRefs(&out, LowercaseRef);
  if (out.where.has_value()) {
    for (Predicate& p : out.where->predicates) {
      if (p.subquery != nullptr) {
        p.subquery =
            std::make_shared<const Query>(LowercaseIdentifiers(*p.subquery));
      }
    }
  }
  return out;
}

std::string DVQ::Canonical() const {
  DVQ lowered;
  lowered.chart = chart;
  lowered.query = LowercaseIdentifiers(query);
  return lowered.ToString();
}

std::vector<ColumnRef> CollectColumnRefs(const Query& q) {
  std::vector<ColumnRef> refs;
  for (const SelectExpr& e : q.select) refs.push_back(e.col);
  for (const JoinClause& j : q.joins) {
    refs.push_back(j.left);
    refs.push_back(j.right);
  }
  if (q.where.has_value()) {
    for (const Predicate& p : q.where->predicates) {
      refs.push_back(p.col);
      if (p.subquery != nullptr) {
        std::vector<ColumnRef> inner = CollectColumnRefs(*p.subquery);
        refs.insert(refs.end(), inner.begin(), inner.end());
      }
    }
  }
  for (const ColumnRef& g : q.group_by) refs.push_back(g);
  if (q.order_by.has_value()) refs.push_back(q.order_by->expr.col);
  if (q.bin.has_value()) refs.push_back(q.bin->col);
  return refs;
}

void TransformColumnRefs(Query* q,
                         const std::function<void(ColumnRef*)>& fn) {
  for (SelectExpr& e : q->select) fn(&e.col);
  for (JoinClause& j : q->joins) {
    fn(&j.left);
    fn(&j.right);
  }
  if (q->where.has_value()) {
    for (Predicate& p : q->where->predicates) {
      fn(&p.col);
      if (p.subquery != nullptr) {
        Query inner = *p.subquery;
        TransformColumnRefs(&inner, fn);
        p.subquery = std::make_shared<const Query>(std::move(inner));
      }
    }
  }
  for (ColumnRef& g : q->group_by) fn(&g);
  if (q->order_by.has_value()) fn(&q->order_by->expr.col);
  if (q->bin.has_value()) fn(&q->bin->col);
}

void TransformNonJoinColumnRefs(Query* q,
                                const std::function<void(ColumnRef*)>& fn) {
  for (SelectExpr& e : q->select) fn(&e.col);
  if (q->where.has_value()) {
    for (Predicate& p : q->where->predicates) {
      fn(&p.col);
      if (p.subquery != nullptr) {
        Query inner = *p.subquery;
        TransformNonJoinColumnRefs(&inner, fn);
        p.subquery = std::make_shared<const Query>(std::move(inner));
      }
    }
  }
  for (ColumnRef& g : q->group_by) fn(&g);
  if (q->order_by.has_value()) fn(&q->order_by->expr.col);
  if (q->bin.has_value()) fn(&q->bin->col);
}

std::vector<std::string> CollectTableNames(const Query& q) {
  std::vector<std::string> names;
  names.push_back(q.from_table);
  for (const JoinClause& j : q.joins) names.push_back(j.table);
  if (q.where.has_value()) {
    for (const Predicate& p : q.where->predicates) {
      if (p.subquery != nullptr) {
        std::vector<std::string> inner = CollectTableNames(*p.subquery);
        names.insert(names.end(), inner.begin(), inner.end());
      }
    }
  }
  return names;
}

}  // namespace gred::dvq
