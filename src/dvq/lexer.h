#ifndef GREDVIS_DVQ_LEXER_H_
#define GREDVIS_DVQ_LEXER_H_

#include <string>
#include <vector>

#include "dvq/token.h"
#include "util/status.h"

namespace gred::dvq {

/// Hard cap on Lex input (1 MiB). Real DVQs are a few hundred bytes;
/// anything past this is an adversarial or corrupted payload and is
/// rejected up front with kInvalidArgument rather than tokenized.
inline constexpr std::size_t kMaxLexInputBytes = 1 << 20;

/// Tokenizes a DVQ string.
///
/// Keywords are recognized case-insensitively and normalized to upper case;
/// everything matching the keyword table becomes TokenKind::kKeyword.
/// Identifiers keep their original spelling (DVQ schema matching is
/// case-insensitive downstream but style matters to the Retuner).
/// Inputs over kMaxLexInputBytes fail with kInvalidArgument.
Result<std::vector<Token>> Lex(const std::string& input);

/// True if `word` (upper-cased) is a reserved DVQ keyword.
bool IsReservedKeyword(const std::string& upper_word);

}  // namespace gred::dvq

#endif  // GREDVIS_DVQ_LEXER_H_
