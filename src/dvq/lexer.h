#ifndef GREDVIS_DVQ_LEXER_H_
#define GREDVIS_DVQ_LEXER_H_

#include <string>
#include <vector>

#include "dvq/token.h"
#include "util/status.h"

namespace gred::dvq {

/// Tokenizes a DVQ string.
///
/// Keywords are recognized case-insensitively and normalized to upper case;
/// everything matching the keyword table becomes TokenKind::kKeyword.
/// Identifiers keep their original spelling (DVQ schema matching is
/// case-insensitive downstream but style matters to the Retuner).
Result<std::vector<Token>> Lex(const std::string& input);

/// True if `word` (upper-cased) is a reserved DVQ keyword.
bool IsReservedKeyword(const std::string& upper_word);

}  // namespace gred::dvq

#endif  // GREDVIS_DVQ_LEXER_H_
