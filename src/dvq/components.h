#ifndef GREDVIS_DVQ_COMPONENTS_H_
#define GREDVIS_DVQ_COMPONENTS_H_

#include <string>
#include <vector>

#include "dvq/ast.h"

namespace gred::dvq {

/// The three component fingerprints of a DVQ, per the paper's Appendix A:
/// every DVQ consists of the chart type, the x/y-axis encoding and the
/// data transformation. Fingerprints are canonical strings computed after
/// comparison normalization, so equality of fingerprints defines the
/// Vis/Axis/Data accuracy matches.
struct Components {
  ChartType chart = ChartType::kBar;
  std::string axis_fingerprint;
  std::string data_fingerprint;
};

/// Extracts the components of `d` (normalizing first).
Components ExtractComponents(const DVQ& d);

/// Chart-type match (Vis Accuracy numerator).
bool VisMatch(const DVQ& a, const DVQ& b);

/// X/Y(/series)-axis match (Axis Accuracy numerator).
bool AxisMatch(const DVQ& a, const DVQ& b);

/// Data-transformation match (Data Accuracy numerator): FROM/JOIN/WHERE/
/// GROUP BY/ORDER BY/LIMIT/BIN, with joins compared as an unordered set.
bool DataMatch(const DVQ& a, const DVQ& b);

/// Exact match of the full query (Overall Accuracy numerator). Equivalent
/// to VisMatch && AxisMatch && DataMatch.
bool OverallMatch(const DVQ& a, const DVQ& b);

}  // namespace gred::dvq

#endif  // GREDVIS_DVQ_COMPONENTS_H_
