#include "dvq/sql.h"

#include "util/strings.h"

namespace gred::dvq {

namespace {

std::string SqlQuote(const std::string& s) {
  return "'" + strings::ReplaceAll(s, "'", "''") + "'";
}

std::string SqlLiteral(const Literal& lit) {
  switch (lit.kind) {
    case Literal::Kind::kInt:
      return strings::Format("%lld", static_cast<long long>(lit.int_value));
    case Literal::Kind::kReal:
      return strings::Format("%g", lit.real_value);
    case Literal::Kind::kString:
      return SqlQuote(lit.string_value);
  }
  return "NULL";
}

std::string BinExpression(const ColumnRef& col, BinUnit unit,
                          SqlDialect dialect) {
  std::string name = col.ToString();
  if (dialect == SqlDialect::kSqlite) {
    switch (unit) {
      case BinUnit::kYear:
        return "strftime('%Y', " + name + ")";
      case BinUnit::kMonth:
        return "strftime('%Y-%m', " + name + ")";
      case BinUnit::kDay:
        return "strftime('%Y-%m-%d', " + name + ")";
      case BinUnit::kWeekday:
        return "strftime('%w', " + name + ")";
    }
  }
  switch (unit) {
    case BinUnit::kYear:
      return "EXTRACT(YEAR FROM " + name + ")";
    case BinUnit::kMonth:
      return "EXTRACT(MONTH FROM " + name + ")";
    case BinUnit::kDay:
      return "CAST(" + name + " AS DATE)";
    case BinUnit::kWeekday:
      return "EXTRACT(DOW FROM " + name + ")";
  }
  return name;
}

/// Renders a select expression, substituting the bin expression for the
/// binned column.
std::string SqlExpr(const SelectExpr& expr, const Query& q,
                    SqlDialect dialect) {
  std::string target = expr.col.ToString();
  if (q.bin.has_value() &&
      q.bin->col.EqualsIgnoreCase(expr.col)) {
    target = BinExpression(q.bin->col, q.bin->unit, dialect);
  }
  if (expr.agg == AggFunc::kNone) return target;
  std::string out = AggFuncName(expr.agg) + "(";
  if (expr.distinct) out += "DISTINCT ";
  out += expr.col.column == "*" ? "*" : target;
  out += ")";
  return out;
}

std::string SqlPredicate(const Predicate& pred, SqlDialect dialect);

std::string SqlCondition(const Condition& cond, SqlDialect dialect) {
  std::string out;
  for (std::size_t i = 0; i < cond.predicates.size(); ++i) {
    if (i > 0) {
      out += cond.connectors[i - 1] == LogicalOp::kAnd ? " AND " : " OR ";
    }
    out += SqlPredicate(cond.predicates[i], dialect);
  }
  return out;
}

std::string SqlPredicate(const Predicate& pred, SqlDialect dialect) {
  std::string lhs = pred.col.ToString();
  switch (pred.op) {
    case CompareOp::kIsNull:
      return lhs + " IS NULL";
    case CompareOp::kIsNotNull:
      return lhs + " IS NOT NULL";
    case CompareOp::kIn:
    case CompareOp::kNotIn: {
      std::string out = lhs;
      out += pred.op == CompareOp::kIn ? " IN (" : " NOT IN (";
      for (std::size_t i = 0; i < pred.in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += SqlLiteral(pred.in_list[i]);
      }
      return out + ")";
    }
    case CompareOp::kLike:
      return lhs + " LIKE " + SqlLiteral(*pred.literal);
    case CompareOp::kNotLike:
      return lhs + " NOT LIKE " + SqlLiteral(*pred.literal);
    default:
      break;
  }
  std::string op = CompareOpName(pred.op);
  if (pred.subquery != nullptr) {
    return lhs + " " + op + " (" + ToSql(*pred.subquery, dialect) + ")";
  }
  return lhs + " " + op + " " + SqlLiteral(*pred.literal);
}

}  // namespace

std::string ToSql(const Query& query, SqlDialect dialect) {
  std::string out = "SELECT ";
  for (std::size_t i = 0; i < query.select.size(); ++i) {
    if (i > 0) out += ", ";
    out += SqlExpr(query.select[i], query, dialect);
  }
  out += " FROM " + query.from_table;
  if (!query.from_alias.empty()) out += " AS " + query.from_alias;
  for (const JoinClause& j : query.joins) {
    out += " JOIN " + j.table;
    if (!j.alias.empty()) out += " AS " + j.alias;
    out += " ON " + j.left.ToString() + " = " + j.right.ToString();
  }
  if (query.where.has_value()) {
    out += " WHERE " + SqlCondition(*query.where, dialect);
  }
  // Explicit grouping: the DVQ's GROUP BY, or the implicit Vega-Zero
  // grouping over non-aggregated select columns; the bin expression
  // participates either way.
  bool has_aggregate = false;
  for (const SelectExpr& e : query.select) {
    if (e.agg != AggFunc::kNone) has_aggregate = true;
  }
  std::vector<std::string> group_terms;
  if (!query.group_by.empty()) {
    for (const ColumnRef& g : query.group_by) {
      std::string term = g.ToString();
      if (query.bin.has_value() && query.bin->col.EqualsIgnoreCase(g)) {
        term = BinExpression(query.bin->col, query.bin->unit, dialect);
      }
      group_terms.push_back(term);
    }
  } else if (has_aggregate) {
    for (const SelectExpr& e : query.select) {
      if (e.agg != AggFunc::kNone) continue;
      group_terms.push_back(SqlExpr(e, query, dialect));
    }
  }
  if (!group_terms.empty()) {
    out += " GROUP BY " + strings::Join(group_terms, ", ");
  }
  if (query.order_by.has_value()) {
    out += " ORDER BY " + SqlExpr(query.order_by->expr, query, dialect);
    out += query.order_by->descending ? " DESC" : " ASC";
  }
  if (query.limit.has_value()) {
    out += strings::Format(" LIMIT %lld",
                           static_cast<long long>(*query.limit));
  }
  return out;
}

std::string ToSql(const DVQ& query, SqlDialect dialect) {
  return ToSql(query.query, dialect);
}

}  // namespace gred::dvq
