#include "dvq/parser.h"

#include <cstdlib>

#include "dvq/lexer.h"
#include "util/strings.h"

namespace gred::dvq {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<DVQ> ParseDvq() {
    DVQ out;
    if (!Peek().IsKeyword("VISUALIZE")) {
      return Error("expected 'Visualize' at the start of a DVQ");
    }
    Advance();
    GRED_ASSIGN_OR_RETURN(out.chart, ParseChartType());
    GRED_ASSIGN_OR_RETURN(out.query, ParseQueryBody());
    GRED_RETURN_IF_ERROR(ExpectEnd());
    return out;
  }

  Result<Query> ParseBareQuery() {
    GRED_ASSIGN_OR_RETURN(Query q, ParseQueryBody());
    GRED_RETURN_IF_ERROR(ExpectEnd());
    return q;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Accept(const char* keyword) {
    if (Peek().IsKeyword(keyword)) {
      Advance();
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(const char* keyword) {
    if (!Accept(keyword)) {
      return Status::ParseError(strings::Format(
          "expected keyword '%s' at offset %zu, found '%s'", keyword,
          Peek().offset, Peek().text.c_str()));
    }
    return Status::OK();
  }

  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError(
          strings::Format("expected '%s' at offset %zu, found '%s'", sym,
                          Peek().offset, Peek().text.c_str()));
    }
    return Status::OK();
  }

  Status ExpectEnd() {
    if (Peek().kind != TokenKind::kEnd) {
      return Status::ParseError(strings::Format(
          "trailing input at offset %zu: '%s'", Peek().offset,
          Peek().text.c_str()));
    }
    return Status::OK();
  }

  Status Error(const std::string& msg) {
    return Status::ParseError(
        strings::Format("%s (at offset %zu, token '%s')", msg.c_str(),
                        Peek().offset, Peek().text.c_str()));
  }

  Result<ChartType> ParseChartType() {
    if (Accept("BAR")) return ChartType::kBar;
    if (Accept("PIE")) return ChartType::kPie;
    if (Accept("LINE")) return ChartType::kLine;
    if (Accept("SCATTER")) return ChartType::kScatter;
    if (Accept("STACKED")) {
      GRED_RETURN_IF_ERROR(Expect("BAR"));
      return ChartType::kStackedBar;
    }
    if (Accept("GROUPING")) {
      if (Accept("LINE")) return ChartType::kGroupingLine;
      if (Accept("SCATTER")) return ChartType::kGroupingScatter;
      return Error("expected LINE or SCATTER after GROUPING");
    }
    return Error("expected a chart type");
  }

  Result<ColumnRef> ParseColumnRef() {
    const Token& tok = Peek();
    if (tok.kind != TokenKind::kIdentifier) {
      // A handful of keyword-like words double as column names in noisy
      // corpora (YEAR, MONTH); allow keyword tokens here.
      if (tok.kind == TokenKind::kKeyword &&
          (tok.text == "YEAR" || tok.text == "MONTH" ||
           tok.text == "WEEKDAY")) {
        ColumnRef ref;
        ref.column = Advance().text;
        return ref;
      }
      return Error("expected a column reference");
    }
    std::string text = Advance().text;
    ColumnRef ref;
    std::size_t dot = text.find('.');
    if (dot == std::string::npos) {
      ref.column = text;
    } else {
      ref.table = text.substr(0, dot);
      ref.column = text.substr(dot + 1);
    }
    return ref;
  }

  Result<SelectExpr> ParseSelectExpr() {
    SelectExpr expr;
    const Token& tok = Peek();
    auto agg_from_keyword = [](const std::string& kw) {
      if (kw == "COUNT") return AggFunc::kCount;
      if (kw == "SUM") return AggFunc::kSum;
      if (kw == "AVG") return AggFunc::kAvg;
      if (kw == "MIN") return AggFunc::kMin;
      if (kw == "MAX") return AggFunc::kMax;
      return AggFunc::kNone;
    };
    if (tok.kind == TokenKind::kKeyword &&
        agg_from_keyword(tok.text) != AggFunc::kNone) {
      expr.agg = agg_from_keyword(Advance().text);
      GRED_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Accept("DISTINCT")) expr.distinct = true;
      if (AcceptSymbol("*")) {
        expr.col.column = "*";
      } else {
        GRED_ASSIGN_OR_RETURN(expr.col, ParseColumnRef());
      }
      GRED_RETURN_IF_ERROR(ExpectSymbol(")"));
      return expr;
    }
    GRED_ASSIGN_OR_RETURN(expr.col, ParseColumnRef());
    return expr;
  }

  Result<Literal> ParseLiteral() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kNumber) {
      std::string text = Advance().text;
      if (text.find('.') != std::string::npos) {
        return Literal::Real(std::strtod(text.c_str(), nullptr));
      }
      return Literal::Int(std::strtoll(text.c_str(), nullptr, 10));
    }
    if (tok.kind == TokenKind::kString) {
      return Literal::Str(Advance().text);
    }
    // Bare identifiers in literal position are treated as unquoted strings
    // (common in the nvBench corpus: WHERE name = Finance).
    if (tok.kind == TokenKind::kIdentifier) {
      return Literal::Str(Advance().text);
    }
    return Error("expected a literal");
  }

  Result<Predicate> ParsePredicate() {
    Predicate pred;
    GRED_ASSIGN_OR_RETURN(pred.col, ParseColumnRef());
    if (Accept("IS")) {
      if (Accept("NOT")) {
        GRED_RETURN_IF_ERROR(Expect("NULL"));
        pred.op = CompareOp::kIsNotNull;
      } else {
        GRED_RETURN_IF_ERROR(Expect("NULL"));
        pred.op = CompareOp::kIsNull;
      }
      return pred;
    }
    bool negated = Accept("NOT");
    if (Accept("LIKE")) {
      pred.op = negated ? CompareOp::kNotLike : CompareOp::kLike;
      GRED_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      pred.literal = std::move(lit);
      return pred;
    }
    if (Accept("IN")) {
      pred.op = negated ? CompareOp::kNotIn : CompareOp::kIn;
      GRED_RETURN_IF_ERROR(ExpectSymbol("("));
      while (true) {
        GRED_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        pred.in_list.push_back(std::move(lit));
        if (!AcceptSymbol(",")) break;
      }
      GRED_RETURN_IF_ERROR(ExpectSymbol(")"));
      return pred;
    }
    if (negated) return Error("expected LIKE or IN after NOT");
    const Token& op_tok = Peek();
    if (op_tok.kind != TokenKind::kSymbol) {
      return Error("expected a comparison operator");
    }
    const std::string op = Advance().text;
    if (op == "=") {
      pred.op = CompareOp::kEq;
    } else if (op == "!=") {
      pred.op = CompareOp::kNe;
    } else if (op == "<") {
      pred.op = CompareOp::kLt;
    } else if (op == "<=") {
      pred.op = CompareOp::kLe;
    } else if (op == ">") {
      pred.op = CompareOp::kGt;
    } else if (op == ">=") {
      pred.op = CompareOp::kGe;
    } else {
      return Error("unknown comparison operator '" + op + "'");
    }
    if (Peek().IsSymbol("(") && Peek(1).IsKeyword("SELECT")) {
      Advance();  // '('
      GRED_ASSIGN_OR_RETURN(Query sub, ParseSubquery());
      GRED_RETURN_IF_ERROR(ExpectSymbol(")"));
      pred.subquery = std::make_shared<const Query>(std::move(sub));
      return pred;
    }
    GRED_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    pred.literal = std::move(lit);
    return pred;
  }

  Result<Condition> ParseCondition() {
    Condition cond;
    GRED_ASSIGN_OR_RETURN(Predicate first, ParsePredicate());
    cond.predicates.push_back(std::move(first));
    while (true) {
      if (Accept("AND")) {
        cond.connectors.push_back(LogicalOp::kAnd);
      } else if (Accept("OR")) {
        cond.connectors.push_back(LogicalOp::kOr);
      } else {
        break;
      }
      GRED_ASSIGN_OR_RETURN(Predicate next, ParsePredicate());
      cond.predicates.push_back(std::move(next));
    }
    return cond;
  }

  Result<BinUnit> ParseBinUnit() {
    const Token& tok = Peek();
    std::string word = strings::ToUpper(tok.text);
    if (tok.kind == TokenKind::kKeyword || tok.kind == TokenKind::kIdentifier) {
      if (word == "YEAR") {
        Advance();
        return BinUnit::kYear;
      }
      if (word == "MONTH") {
        Advance();
        return BinUnit::kMonth;
      }
      if (word == "DAY") {
        Advance();
        return BinUnit::kDay;
      }
      if (word == "WEEKDAY") {
        Advance();
        return BinUnit::kWeekday;
      }
    }
    return Error("expected a bin unit (YEAR, MONTH, DAY, WEEKDAY)");
  }

  /// Enters one scalar-subquery nesting level. The explicit depth
  /// counter turns what used to be unbounded recursion (one native stack
  /// frame chain per `(SELECT ...` level) into a typed kParseError at
  /// kMaxParseDepth.
  Result<Query> ParseSubquery() {
    if (depth_ >= kMaxParseDepth) {
      return Status::ParseError(strings::Format(
          "subquery nesting exceeds the maximum depth of %d (at offset %zu)",
          kMaxParseDepth, Peek().offset));
    }
    ++depth_;
    Result<Query> sub = ParseQueryBody();
    --depth_;
    return sub;
  }

  Result<Query> ParseQueryBody() {
    Query q;
    GRED_RETURN_IF_ERROR(Expect("SELECT"));
    while (true) {
      GRED_ASSIGN_OR_RETURN(SelectExpr expr, ParseSelectExpr());
      q.select.push_back(std::move(expr));
      if (!AcceptSymbol(",")) break;
    }
    if (q.select.empty()) return Error("empty select list");
    GRED_RETURN_IF_ERROR(Expect("FROM"));
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected a table name after FROM");
    }
    q.from_table = Advance().text;
    if (Accept("AS")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected an alias after AS");
      }
      q.from_alias = Advance().text;
    }
    while (Accept("JOIN")) {
      JoinClause join;
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected a table name after JOIN");
      }
      join.table = Advance().text;
      if (Accept("AS")) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected an alias after AS");
        }
        join.alias = Advance().text;
      }
      GRED_RETURN_IF_ERROR(Expect("ON"));
      GRED_ASSIGN_OR_RETURN(join.left, ParseColumnRef());
      GRED_RETURN_IF_ERROR(ExpectSymbol("="));
      GRED_ASSIGN_OR_RETURN(join.right, ParseColumnRef());
      q.joins.push_back(std::move(join));
    }
    if (Accept("WHERE")) {
      GRED_ASSIGN_OR_RETURN(Condition cond, ParseCondition());
      q.where = std::move(cond);
    }
    if (Accept("GROUP")) {
      GRED_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        GRED_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        q.group_by.push_back(std::move(ref));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (Accept("ORDER")) {
      GRED_RETURN_IF_ERROR(Expect("BY"));
      OrderByClause order;
      GRED_ASSIGN_OR_RETURN(order.expr, ParseSelectExpr());
      if (Accept("DESC")) {
        order.descending = true;
      } else {
        Accept("ASC");
      }
      q.order_by = std::move(order);
    }
    if (Accept("LIMIT")) {
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected a number after LIMIT");
      }
      q.limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
    }
    if (Accept("BIN")) {
      BinClause bin;
      GRED_ASSIGN_OR_RETURN(bin.col, ParseColumnRef());
      GRED_RETURN_IF_ERROR(Expect("BY"));
      GRED_ASSIGN_OR_RETURN(bin.unit, ParseBinUnit());
      q.bin = std::move(bin);
    }
    return q;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;  // current scalar-subquery nesting level
};

}  // namespace

Result<DVQ> Parse(const std::string& input) {
  return Parse(input, nullptr);
}

Result<DVQ> Parse(const std::string& input, ExecContext* guard) {
  GRED_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  // Parsing is linear in the token count (every production advances), so
  // charging the whole stream up front is an exact deterministic bound.
  if (guard != nullptr) {
    GRED_RETURN_IF_ERROR(guard->ChargeTicks(tokens.size()));
  }
  Parser parser(std::move(tokens));
  return parser.ParseDvq();
}

Result<Query> ParseQuery(const std::string& input) {
  GRED_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseBareQuery();
}

}  // namespace gred::dvq
