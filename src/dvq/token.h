#ifndef GREDVIS_DVQ_TOKEN_H_
#define GREDVIS_DVQ_TOKEN_H_

#include <cstddef>
#include <string>

namespace gred::dvq {

/// Lexical token kinds of the DVQ (Vega-Zero style) language.
enum class TokenKind {
  kKeyword,     // VISUALIZE SELECT FROM WHERE ... (normalized upper-case)
  kIdentifier,  // table / column names, possibly qualified (t1.col)
  kNumber,      // integer or decimal literal
  kString,      // quoted literal, quotes stripped
  kSymbol,      // ( ) , * = != < <= > >= !
  kEnd,
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // keyword: upper-cased; identifier: verbatim
  std::size_t offset = 0;

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return kind == TokenKind::kSymbol && text == sym;
  }
};

}  // namespace gred::dvq

#endif  // GREDVIS_DVQ_TOKEN_H_
