#ifndef GREDVIS_DVQ_SQL_H_
#define GREDVIS_DVQ_SQL_H_

#include <string>

#include "dvq/ast.h"

namespace gred::dvq {

/// SQL dialect for ToSql.
enum class SqlDialect {
  kSqlite,    // strftime-based binning (nvBench's substrate)
  kStandard,  // EXTRACT-based binning
};

/// Translates a DVQ's relational core into executable SQL.
///
/// DVQ departs from SQL in three places, all normalized here:
///  * `BIN c BY unit` becomes a date-truncation expression that replaces
///    `c` in the select list and joins the GROUP BY;
///  * implicit grouping (aggregates without GROUP BY) becomes explicit;
///  * string literals are single-quoted with '' escaping.
/// The `Visualize CHART` prefix has no SQL counterpart; callers keep the
/// chart type on the side.
std::string ToSql(const Query& query,
                  SqlDialect dialect = SqlDialect::kSqlite);

/// Convenience overload for whole DVQs (chart type is dropped).
std::string ToSql(const DVQ& query,
                  SqlDialect dialect = SqlDialect::kSqlite);

}  // namespace gred::dvq

#endif  // GREDVIS_DVQ_SQL_H_
