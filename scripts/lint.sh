#!/usr/bin/env bash
# Static lint pass: clang-tidy (config in .clang-tidy) over the compile
# commands CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS is on by
# default, see the top-level CMakeLists.txt).
#
# Degrades gracefully: containers that ship only the GCC toolchain have
# no clang-tidy binary — the pass prints a skip notice and exits 0, so
# tier1.sh stays green everywhere while CI images with clang-tidy get
# the full run. Findings are reported but non-fatal (WarningsAsErrors is
# empty); a broken invocation (missing compile_commands.json) is fatal.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD:-$ROOT/build}"
JOBS="${JOBS:-$(nproc)}"

TIDY=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    TIDY="$candidate"
    break
  fi
done
if [[ -z "$TIDY" ]]; then
  echo "[lint] clang-tidy not installed; skipping static lint pass"
  exit 0
fi

if [[ ! -f "$BUILD/compile_commands.json" ]]; then
  echo "[lint] $BUILD/compile_commands.json missing; configuring..."
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
fi
if [[ ! -f "$BUILD/compile_commands.json" ]]; then
  echo "[lint] FAILED: no compile_commands.json after configure" >&2
  exit 1
fi

# First-party translation units only: third-party code and generated
# files are not ours to lint.
mapfile -t sources < <(cd "$ROOT" && ls src/*/*.cc tests/*.cc bench/*.cc \
                       tools/*.cc 2>/dev/null)
echo "[lint] $TIDY over ${#sources[@]} files (${JOBS} jobs)"
status=0
printf '%s\n' "${sources[@]}" |
  xargs -P "$JOBS" -I{} "$TIDY" -p "$BUILD" --quiet "$ROOT/{}" \
  || status=$?
if [[ $status -ne 0 ]]; then
  echo "[lint] clang-tidy reported findings (non-fatal; see above)"
fi
echo "[lint] done"
exit 0
