#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, a Release micro-benchmark
# smoke over the retrieval kernel, then a ThreadSanitizer pass over the
# concurrency-sensitive tests (the parallel eval harness, the thread
# pool, GRED's mutex-guarded annotation cache, the sharded embedding
# cache, and the fault-tolerance layer, whose retry + degradation paths
# exercise the annotation cache and stage timers concurrently).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: release build + full ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j"$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j"$JOBS"

echo "== tier-1: static lint (clang-tidy, skipped when not installed) =="
"$ROOT/scripts/lint.sh"

echo "== tier-1: dvqlint smoke over examples/dvqs =="
# The committed clean corpus must lint clean; the broken corpus must be
# rejected (nonzero exit) with error-level diagnostics.
"$ROOT/build/tools/dvqlint" hr_1 "$ROOT/examples/dvqs/clean.dvq"
if "$ROOT/build/tools/dvqlint" hr_1 "$ROOT/examples/dvqs/broken.dvq" \
    >/dev/null 2>&1; then
  echo "tier-1: FAILED — dvqlint accepted examples/dvqs/broken.dvq" >&2
  exit 1
fi

echo "== tier-1: micro-benchmark smoke (Release retrieval kernel) =="
# Fast pass over the retrieval benchmarks: keeps the benchmark path and
# the bench-report tooling building and running. Includes the
# retrieval_sweep 1-probe smoke (2000-entry library, exact vs quantized
# vs IVF at one probe) so the recall@k frontier path runs on every gate.
# Writes to build/ so a smoke run never overwrites the committed
# BENCH_retrieval.json numbers (regenerate those with a plain
# `scripts/bench_report`).
"$ROOT/scripts/bench_report" --smoke "$ROOT/build/BENCH_retrieval_smoke.json"

echo "== tier-1: serve smoke (wire protocol end to end) =="
# Three requests through the real CLI serve loop: a valid translate, a
# malformed line and an over-budget request. Every line in must produce
# exactly one well-formed JSON response out, with the right verdicts,
# and the server must shut down cleanly on EOF.
SERVE_OUT="$ROOT/build/serve_smoke.ndjson"
printf '%s\n' \
  '{"id":1,"nlq":"What are cinema_name and open year in cinemas? Plot a bar chart.","db":"library_1"}' \
  '{this is not json}' \
  '{"id":3,"nlq":"What are cinema_name and open year in cinemas? Plot a bar chart.","db":"library_1","budget_rows":1}' \
  | GRED_BENCH_TRAIN_SIZE=250 GRED_BENCH_TEST_SIZE=40 GRED_SERVE_TIMINGS=0 \
    "$ROOT/build/tools/gredvis" serve >"$SERVE_OUT"
SERVE_OUT="$SERVE_OUT" python3 - <<'PY'
import json, os, sys

with open(os.environ["SERVE_OUT"]) as f:
    lines = [line for line in f.read().splitlines() if line.strip()]
if len(lines) != 3:
    sys.exit(f"serve smoke: expected 3 responses, got {len(lines)}")
replies = {}
for line in lines:
    reply = json.loads(line)  # every response must be well-formed JSON
    replies[reply.get("id")] = reply
ok = replies.get(1, {})
if not ok.get("ok") or ok.get("rows", 0) < 1 or "dvq" not in ok:
    sys.exit(f"serve smoke: bad translate response: {ok}")
bad = replies.get(None, {})
if bad.get("ok") is not False or bad.get("code") != "ParseError":
    sys.exit(f"serve smoke: bad malformed-line response: {bad}")
tripped = replies.get(3, {})
if tripped.get("ok") is not False or not tripped.get("resource_exhausted"):
    sys.exit(f"serve smoke: bad over-budget response: {tripped}")
print("serve smoke: 3/3 responses well-formed, clean shutdown")
PY

echo "== tier-1: serve-sweep smoke (replay identity + admission control) =="
# One-worker trace replay through scripts/bench_report --serve: the
# binary itself asserts byte-identity with the serial transcript and
# exact response accounting under the overload burst. Writes to build/
# so a smoke run never overwrites the committed BENCH_serve.json.
GRED_SERVE_THREADS=1 GRED_SERVE_REQUESTS=12 \
  "$ROOT/scripts/bench_report" --serve --smoke \
  "$ROOT/build/BENCH_serve_smoke.json"

echo "== tier-1: chaos smoke (overload + faults + reload invariants) =="
# The deterministic chaos harness at smoke scale: breaker-vs-retry
# economics on a dead backend, an all-knobs-on schedule (bursts, a
# wedged worker, injected faults, rate limiting, brownout, a mid-run
# reload) with exactly-once + counter-balance asserted by the binary,
# and the knobs-off replay-identity check. Merges into the smoke serve
# report so the committed BENCH_serve.json is never touched by the gate.
"$ROOT/scripts/bench_report" --chaos --smoke \
  "$ROOT/build/BENCH_serve_smoke.json"

echo "== tier-1: analysis smoke (repair gate + cost calibration) =="
# The repair/cost sweep at smoke scale through scripts/bench_report
# --analysis: the binary itself asserts that the repair gate strictly
# reduces lint rejections without losing accuracy at every corruption
# rate, and that the cost estimator never under-prices a corpus query
# (zero false rejections at max budget, zero missed runtime trips).
# Writes to build/ so a smoke run never overwrites the committed
# BENCH_analysis.json numbers.
"$ROOT/scripts/bench_report" --analysis --smoke \
  "$ROOT/build/BENCH_analysis_smoke.json"

echo "== tier-1: exec-sweep smoke (columnar vs row engine identity) =="
# Both executor engines over a small synthetic table through
# scripts/bench_report --exec: the binary itself asserts bit-identical
# results with guards armed. Writes to build/ so a smoke run never
# overwrites the committed BENCH_exec.json numbers.
"$ROOT/scripts/bench_report" --exec --smoke \
  "$ROOT/build/BENCH_exec_smoke.json"

echo "== tier-1: ThreadSanitizer pass (parallel harness + fault layer) =="
if ! cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DGRED_SANITIZE=thread \
  -DGRED_BUILD_BENCHMARKS=OFF \
  -DGRED_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo; then
  echo "tier-1: FAILED — build-tsan configure failed" >&2
  exit 1
fi
cmake --build "$ROOT/build-tsan" -j"$JOBS" \
  --target thread_pool_test eval_test llm_test gred_test \
           retrieval_equivalence_test serve_test circuit_breaker_test \
           exec_reference_test kernel_dispatch_test
# TSAN_OPTIONS makes any detected race fail the run loudly.
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/thread_pool_test"
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/eval_test" \
  --gtest_filter='ParallelHarness.*'
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/llm_test" \
  --gtest_filter='Resilient.*'
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/gred_test" \
  --gtest_filter='*Degraded*:*RetryRecovers*:*GeneratorFailure*'
TSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-tsan/tests/retrieval_equivalence_test" \
  --gtest_filter='CachingEmbedder.*'
# The SIMD dot kernel resolves its dispatch target once per process
# (magic static + env override); the hammer races many threads through
# Dot() and must stay data-race-free and bit-identical.
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/kernel_dispatch_test"
# The serving layer is the repo's most concurrent surface: a bounded
# MPMC queue, a worker pool sharing one Gred, per-session rate limiting,
# epoch-swapping hot reload and per-stream response serialization — the
# whole test binary runs under TSan (including the exactly-once queue
# hammer).
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/serve_test"
# The circuit breaker's state machine is lock-arbitrated but its inner
# call runs outside the lock; the contention hammer must account every
# call with no race.
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/circuit_breaker_test"
# Engine differential (row vs columnar) under TSan: the eval harness
# runs executions on worker threads, so the executor — including the
# columnar engine's shared-scan borrowing — must stay data-race-free.
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/exec_reference_test" \
  --gtest_filter='*EngineDifferential*'

echo "== tier-1: ASan+UBSan pass (fuzz + resource-guard tests) =="
# The fuzz harness and the guard layer see adversarial inputs (oversized,
# NUL-embedded, deeply nested) and budget-aborted executions; run them
# under AddressSanitizer + UndefinedBehaviorSanitizer so an out-of-bounds
# read or a mid-operator leak fails loudly instead of passing silently.
if ! cmake -B "$ROOT/build-asan" -S "$ROOT" \
  -DGRED_SANITIZE=address,undefined \
  -DGRED_BUILD_BENCHMARKS=OFF \
  -DGRED_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo; then
  echo "tier-1: FAILED — build-asan configure failed" >&2
  exit 1
fi
cmake --build "$ROOT/build-asan" -j"$JOBS" \
  --target fuzz_test dvq_test resource_guard_test metamorphic_test \
           analysis_test repair_test json_test exec_test \
           exec_reference_test retrieval_equivalence_test \
           kernel_dispatch_test
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/fuzz_test"
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/dvq_test"
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/resource_guard_test"
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/metamorphic_test"
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/analysis_test"
# The repairer rewrites DVQ ASTs in place (clause erasure, in-loop
# retargeting) and the cost estimator walks borrowed column statistics —
# both are pointer-heavy AST surgery that must hold up under ASan.
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/repair_test"
# The JSON parser is the wire protocol's first line of defense: its
# regression suite (depth cap, strtod end-pointer, surrogate pairs)
# runs under ASan+UBSan so a parser overread fails loudly.
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/json_test"
# The columnar engine works over borrowed column pointers and selection
# index vectors — exactly the pointer arithmetic ASan exists to police.
# The differential suites replay the whole eval corpus plus 1000
# randomized queries through both engines here.
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/exec_test"
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/exec_reference_test"
# ANN differential smoke: the int8 quantized scan (aligned code buffers,
# pointer-stride arithmetic) and the IVF probe path against the exact
# store, plus the RetrievalIndex facade, under ASan+UBSan — an overread
# in a SIMD tail or a stride miscalculation fails here, not in prod.
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/retrieval_equivalence_test" \
  --gtest_filter='QuantizedEquivalence.*:IvfEquivalence.*:RetrievalIndexFacade.*'
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/kernel_dispatch_test"

echo "== tier-1: OK =="
