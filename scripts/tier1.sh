#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, a Release micro-benchmark
# smoke over the retrieval kernel, then a ThreadSanitizer pass over the
# concurrency-sensitive tests (the parallel eval harness, the thread
# pool, GRED's mutex-guarded annotation cache, the sharded embedding
# cache, and the fault-tolerance layer, whose retry + degradation paths
# exercise the annotation cache and stage timers concurrently).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: release build + full ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j"$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j"$JOBS"

echo "== tier-1: static lint (clang-tidy, skipped when not installed) =="
"$ROOT/scripts/lint.sh"

echo "== tier-1: dvqlint smoke over examples/dvqs =="
# The committed clean corpus must lint clean; the broken corpus must be
# rejected (nonzero exit) with error-level diagnostics.
"$ROOT/build/tools/dvqlint" hr_1 "$ROOT/examples/dvqs/clean.dvq"
if "$ROOT/build/tools/dvqlint" hr_1 "$ROOT/examples/dvqs/broken.dvq" \
    >/dev/null 2>&1; then
  echo "tier-1: FAILED — dvqlint accepted examples/dvqs/broken.dvq" >&2
  exit 1
fi

echo "== tier-1: micro-benchmark smoke (Release retrieval kernel) =="
# Fast pass over the retrieval benchmarks: keeps the benchmark path and
# the bench-report tooling building and running. Writes to build/ so a
# smoke run never overwrites the committed BENCH_retrieval.json numbers
# (regenerate those with a plain `scripts/bench_report`).
"$ROOT/scripts/bench_report" --smoke "$ROOT/build/BENCH_retrieval_smoke.json"

echo "== tier-1: ThreadSanitizer pass (parallel harness + fault layer) =="
if ! cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DGRED_SANITIZE=thread \
  -DGRED_BUILD_BENCHMARKS=OFF \
  -DGRED_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo; then
  echo "tier-1: FAILED — build-tsan configure failed" >&2
  exit 1
fi
cmake --build "$ROOT/build-tsan" -j"$JOBS" \
  --target thread_pool_test eval_test llm_test gred_test \
           retrieval_equivalence_test
# TSAN_OPTIONS makes any detected race fail the run loudly.
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/thread_pool_test"
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/eval_test" \
  --gtest_filter='ParallelHarness.*'
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/llm_test" \
  --gtest_filter='Resilient.*'
TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/gred_test" \
  --gtest_filter='*Degraded*:*RetryRecovers*:*GeneratorFailure*'
TSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-tsan/tests/retrieval_equivalence_test" \
  --gtest_filter='CachingEmbedder.*'

echo "== tier-1: ASan+UBSan pass (fuzz + resource-guard tests) =="
# The fuzz harness and the guard layer see adversarial inputs (oversized,
# NUL-embedded, deeply nested) and budget-aborted executions; run them
# under AddressSanitizer + UndefinedBehaviorSanitizer so an out-of-bounds
# read or a mid-operator leak fails loudly instead of passing silently.
if ! cmake -B "$ROOT/build-asan" -S "$ROOT" \
  -DGRED_SANITIZE=address,undefined \
  -DGRED_BUILD_BENCHMARKS=OFF \
  -DGRED_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo; then
  echo "tier-1: FAILED — build-asan configure failed" >&2
  exit 1
fi
cmake --build "$ROOT/build-asan" -j"$JOBS" \
  --target fuzz_test dvq_test resource_guard_test metamorphic_test \
           analysis_test
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/fuzz_test"
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/dvq_test"
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/resource_guard_test"
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/metamorphic_test"
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-asan/tests/analysis_test"

echo "== tier-1: OK =="
