// render_dvq — run a DVQ (not a natural-language question) against a
// generated database and render the result. Pipe-friendly: the DVQ is
// read from argv or stdin.
//
//   $ ./build/tools/render_dvq hr_1 "Visualize BAR SELECT city ,
//     COUNT(city) FROM employees GROUP BY city"
//   $ echo "Visualize ..." | ./build/tools/render_dvq hr_1 --svg out.svg
//
// Flags: --svg <path>    also write an SVG
//        --vega          print the Vega-Lite spec
//        --echarts       print the ECharts option
//        --sql           print the SQL translation

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dataset/benchmark.h"
#include "dvq/parser.h"
#include "dvq/sql.h"
#include "viz/chart.h"
#include "viz/echarts.h"
#include "viz/svg.h"

int main(int argc, char** argv) {
  using namespace gred;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: render_dvq <database> [dvq] [--svg out.svg] "
                 "[--vega] [--echarts] [--sql]\n");
    return 2;
  }
  std::string db_name = argv[1];
  std::string dvq_text;
  std::string svg_path;
  bool vega = false;
  bool echarts = false;
  bool sql = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--svg" && i + 1 < argc) {
      svg_path = argv[++i];
    } else if (arg == "--vega") {
      vega = true;
    } else if (arg == "--echarts") {
      echarts = true;
    } else if (arg == "--sql") {
      sql = true;
    } else {
      dvq_text = arg;
    }
  }
  if (dvq_text.empty()) std::getline(std::cin, dvq_text);
  if (dvq_text.empty()) {
    std::fprintf(stderr, "no DVQ given\n");
    return 2;
  }

  dataset::BenchmarkOptions options;
  options.train_size = 1;  // databases only; no training pairs needed
  options.test_size = 1;
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  const dataset::GeneratedDatabase* db = suite.FindCleanDb(db_name);
  if (db == nullptr) {
    std::fprintf(stderr, "unknown database '%s'\n", db_name.c_str());
    return 1;
  }

  Result<dvq::DVQ> parsed = dvq::Parse(dvq_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  if (sql) {
    std::printf("SQL: %s\n", dvq::ToSql(parsed.value()).c_str());
  }
  Result<viz::Chart> chart = viz::BuildChart(parsed.value(), db->data);
  if (!chart.ok()) {
    std::fprintf(stderr, "no chart produced: %s\n",
                 chart.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", viz::RenderAscii(chart.value()).c_str());
  if (vega) {
    std::printf("%s\n", viz::ToVegaLite(chart.value()).Dump(2).c_str());
  }
  if (echarts) {
    std::printf("%s\n", viz::ToECharts(chart.value()).Dump(2).c_str());
  }
  if (!svg_path.empty()) {
    std::ofstream out(svg_path);
    out << viz::RenderSvg(chart.value());
    std::printf("SVG written to %s\n", svg_path.c_str());
  }
  return 0;
}
