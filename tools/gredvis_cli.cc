// gredvis — unified command-line front end for the library.
//
//   gredvis stats                       dataset statistics (Figure 2)
//   gredvis schema <db>                 print a database schema
//   gredvis annotate <db>               LLM annotations for a database
//   gredvis translate <db> "<question>" run GRED on one question
//   gredvis eval <model> <set>          accuracy tables
//   gredvis export <dir>                dump the benchmark as JSON
//   gredvis serve                       long-lived NDJSON server on
//                                       stdin/stdout (DESIGN.md §13)
//
// Scale with GRED_BENCH_TRAIN_SIZE / GRED_BENCH_TEST_SIZE (defaults are
// CLI-friendly: 1500 train / 200 test). `serve` additionally reads
// GRED_SERVE_WORKERS, GRED_SERVE_QUEUE, GRED_SERVE_TIMINGS,
// GRED_SERVE_DEADLINE_MS, GRED_SERVE_ROW_BUDGET and the hardening
// knobs: GRED_SERVE_COST_GATE (static admission pricing: reject
// provably over-budget queries before any executor work, DESIGN.md
// §17), GRED_SERVE_BROWNOUT_HIGH / GRED_SERVE_BROWNOUT_LOW /
// GRED_SERVE_BROWNOUT_DEADLINE_MS / GRED_SERVE_BROWNOUT_ROW_BUDGET
// (brownout load-shedding), GRED_SERVE_RATE / GRED_SERVE_RATE_BURST
// (per-session token buckets), GRED_SERVE_BREAKER_FAILURES /
// GRED_SERVE_BREAKER_COOLDOWN (circuit breaker around the LLM stack).
// All knobs are validated strictly (util/env.h): a malformed value
// prints a message and exits 2 rather than silently running on the
// wrong configuration. SIGTERM/SIGINT drain gracefully: no new
// admissions, every admitted request answered, then exit.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "dataset/benchmark.h"
#include "dataset/io.h"
#include "eval/metrics.h"
#include "gred/gred.h"
#include "llm/circuit_breaker.h"
#include "llm/resilient.h"
#include "llm/sim_llm.h"
#include "models/rgvisnet.h"
#include "models/seq2vis.h"
#include "models/transformer.h"
#include "serve/server.h"
#include "util/env.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "dvq/sql.h"
#include "viz/chart.h"
#include "viz/svg.h"

namespace {

using namespace gred;

/// Set by the SIGTERM/SIGINT handler; ServeStream checks it before each
/// blocking read. Registered without SA_RESTART so the signal interrupts
/// the read instead of resuming it — the only async-signal work done is
/// this store.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

int Usage() {
  std::fprintf(
      stderr,
      "usage: gredvis <command> [args]\n"
      "  stats                     dataset statistics (Figure 2)\n"
      "  schema <db>               print a database schema\n"
      "  annotate <db>             LLM annotations for a database\n"
      "  translate <db> <question> run GRED on one question\n"
      "  eval <model> <set>        model in {seq2vis,transformer,rgvisnet,"
      "gred}; set in {clean,nlq,schema,both}\n"
      "  export <dir>              dump the benchmark as JSON\n"
      "  serve                     NDJSON request/response loop on "
      "stdin/stdout\n");
  return 2;
}

dataset::BenchmarkSuite BuildSuite() {
  dataset::BenchmarkOptions options;
  options.train_size = EnvSizeOrDie("GRED_BENCH_TRAIN_SIZE", 1500);
  options.test_size = EnvSizeOrDie("GRED_BENCH_TEST_SIZE", 200);
  std::fprintf(stderr, "[gredvis] building suite (%zu train / %zu test)\n",
               options.train_size, options.test_size);
  return dataset::BuildBenchmarkSuite(options);
}

int CmdStats() {
  dataset::BenchmarkSuite suite = BuildSuite();
  dataset::DatasetStats stats =
      dataset::ComputeStats(suite.test_clean, suite.databases);
  TablePrinter table({"Metric", "Value"});
  for (const auto& [chart, count] : stats.by_chart) {
    table.AddRow({"chart: " + chart, std::to_string(count)});
  }
  for (const auto& [level, count] : stats.by_hardness) {
    table.AddRow({"hardness: " + level, std::to_string(count)});
  }
  table.AddRow({"databases", std::to_string(stats.num_databases)});
  table.AddRow({"tables", std::to_string(stats.num_tables)});
  table.AddRow({"columns", std::to_string(stats.num_columns)});
  table.AddRow({"avg tables/db",
                strings::Format("%.2f", stats.avg_tables_per_db)});
  table.AddRow({"avg columns/table",
                strings::Format("%.2f", stats.avg_columns_per_table)});
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdSchema(const std::string& db_name) {
  dataset::BenchmarkSuite suite = BuildSuite();
  const dataset::GeneratedDatabase* db = suite.FindCleanDb(db_name);
  if (db == nullptr) {
    std::fprintf(stderr, "unknown database '%s'\n", db_name.c_str());
    return 1;
  }
  std::printf("%s", db->data.db_schema().RenderSchemaPrompt().c_str());
  return 0;
}

int CmdAnnotate(const std::string& db_name) {
  dataset::BenchmarkSuite suite = BuildSuite();
  const dataset::GeneratedDatabase* db = suite.FindCleanDb(db_name);
  if (db == nullptr) {
    std::fprintf(stderr, "unknown database '%s'\n", db_name.c_str());
    return 1;
  }
  llm::SimulatedChatModel llm;
  Result<std::string> annotations =
      core::GenerateAnnotations(db->data.db_schema(), llm);
  if (!annotations.ok()) {
    std::fprintf(stderr, "%s\n", annotations.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", annotations.value().c_str());
  return 0;
}

int CmdTranslate(const std::string& db_name, const std::string& question) {
  dataset::BenchmarkSuite suite = BuildSuite();
  const dataset::GeneratedDatabase* db = suite.FindCleanDb(db_name);
  if (db == nullptr) {
    std::fprintf(stderr, "unknown database '%s'\n", db_name.c_str());
    return 1;
  }
  llm::SimulatedChatModel llm;
  // GRED_BENCH_FAULT_RATE > 0 wires the fault-injecting + retrying stack
  // in front of the LLM (same knobs as the bench harness), to watch the
  // pipeline degrade on a single question.
  double fault_rate = EnvRateOrDie("GRED_BENCH_FAULT_RATE", 0.0);
  llm::FaultConfig faults;
  faults.transient_rate = fault_rate;
  faults.truncate_rate = fault_rate / 2;
  faults.garbage_rate = fault_rate / 2;
  llm::FaultInjectingChatModel faulty(&llm, faults);
  llm::RetryConfig retry;
  retry.max_attempts = EnvSizeOrDie("GRED_BENCH_RETRIES", 3);
  llm::RetryingChatModel retrying(&faulty, retry);
  const llm::ChatModel* chat = fault_rate > 0.0
                                   ? static_cast<const llm::ChatModel*>(
                                         &retrying)
                                   : &llm;
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  core::Gred gred(corpus, chat);
  Result<dvq::DVQ> dvq = gred.Translate(question, db->data);
  if (!dvq.ok()) {
    std::fprintf(stderr, "translation failed: %s\n",
                 dvq.status().ToString().c_str());
    return 1;
  }
  core::Gred::Trace trace = gred.last_trace();
  std::fprintf(stderr, "[gredvis] generator: %s\n", trace.dvq_gen.c_str());
  std::fprintf(stderr, "[gredvis] retuner:   %s\n",
               trace.rtn_degraded ? "(degraded; generator DVQ kept)"
                                  : trace.dvq_rtn.c_str());
  std::fprintf(stderr, "[gredvis] debugger:  %s\n",
               trace.dbg_degraded ? "(degraded; previous DVQ kept)"
                                  : trace.dvq_dbg.c_str());
  std::printf("DVQ: %s\n", dvq.value().ToString().c_str());
  std::printf("SQL: %s\n", dvq::ToSql(dvq.value()).c_str());
  Result<viz::Chart> chart = viz::BuildChart(dvq.value(), db->data);
  if (!chart.ok()) {
    std::printf("no chart produced: %s\n",
                chart.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", viz::RenderAscii(chart.value()).c_str());
  return 0;
}

int CmdServe() {
  dataset::BenchmarkSuite suite = BuildSuite();
  llm::SimulatedChatModel llm;
  // The same optional fault/retry stack as `translate`, so a serve
  // session can be exercised under injected LLM faults.
  double fault_rate = EnvRateOrDie("GRED_BENCH_FAULT_RATE", 0.0);
  llm::FaultConfig faults;
  faults.transient_rate = fault_rate;
  faults.truncate_rate = fault_rate / 2;
  faults.garbage_rate = fault_rate / 2;
  llm::FaultInjectingChatModel faulty(&llm, faults);
  llm::RetryConfig retry;
  retry.max_attempts = EnvSizeOrDie("GRED_BENCH_RETRIES", 3);
  llm::RetryingChatModel retrying(&faulty, retry);
  const llm::ChatModel* chat =
      fault_rate > 0.0 ? static_cast<const llm::ChatModel*>(&retrying) : &llm;

  // Optional circuit breaker around whatever the stack is so far: stops
  // hammering a dead backend instead of burning the retry budget on
  // every request (DESIGN.md §16). 0 = off.
  serve::ServerOptions options;
  std::unique_ptr<llm::CircuitBreakerChatModel> breaker;
  std::uint64_t breaker_failures =
      EnvCountOrDie("GRED_SERVE_BREAKER_FAILURES", 0);
  if (breaker_failures > 0) {
    llm::BreakerConfig config;
    config.failure_threshold = static_cast<std::size_t>(breaker_failures);
    config.open_cooldown = static_cast<std::size_t>(
        EnvCountOrDie("GRED_SERVE_BREAKER_COOLDOWN", 8));
    breaker = std::make_unique<llm::CircuitBreakerChatModel>(chat, config);
    chat = breaker.get();
    options.breaker = breaker.get();
  }

  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  core::Gred gred(corpus, chat);
  // Annotations resolve up front (preparation phase), so no request
  // pays annotation latency and concurrent sessions stay deterministic.
  Result<std::size_t> annotated = gred.PrepareAnnotations(suite.databases);
  if (annotated.ok()) {
    std::fprintf(stderr, "[gredvis] annotated %zu databases\n",
                 annotated.value());
  }

  options.num_workers =
      static_cast<std::size_t>(EnvCountOrDie("GRED_SERVE_WORKERS", 0));
  options.queue_capacity = EnvSizeOrDie("GRED_SERVE_QUEUE", 64);
  options.include_timings = EnvFlagOrDie("GRED_SERVE_TIMINGS", true);
  options.default_limits.deadline_ticks =
      EnvCountOrDie("GRED_SERVE_DEADLINE_MS", 0) *
      serve::kAccountedTicksPerMs;
  options.default_limits.row_budget =
      EnvCountOrDie("GRED_SERVE_ROW_BUDGET", 0);
  // Static admission pricing against the effective per-request limits.
  options.cost_gate = EnvFlagOrDie("GRED_SERVE_COST_GATE", false);
  // Brownout watermarks + the tighter limits applied while browned out.
  options.brownout_high_watermark = static_cast<std::size_t>(
      EnvCountOrDie("GRED_SERVE_BROWNOUT_HIGH", 0));
  options.brownout_low_watermark = static_cast<std::size_t>(
      EnvCountOrDie("GRED_SERVE_BROWNOUT_LOW", 0));
  options.brownout_limits.deadline_ticks =
      EnvCountOrDie("GRED_SERVE_BROWNOUT_DEADLINE_MS", 0) *
      serve::kAccountedTicksPerMs;
  options.brownout_limits.row_budget =
      EnvCountOrDie("GRED_SERVE_BROWNOUT_ROW_BUDGET", 0);
  // Per-session token buckets (both knobs > 0 to arm).
  options.rate_refill_per_request = EnvRateOrDie("GRED_SERVE_RATE", 0.0);
  options.rate_burst =
      static_cast<double>(EnvCountOrDie("GRED_SERVE_RATE_BURST", 0));

  // `{"type":"reload"}` rebuilds the suite and pipeline from the same
  // environment configuration and swaps it in as a new epoch; requests
  // already admitted finish on the epoch they started with.
  options.reload_handler = [chat]() -> Result<serve::EpochPayload> {
    auto new_suite =
        std::make_shared<dataset::BenchmarkSuite>(BuildSuite());
    models::TrainingCorpus new_corpus;
    new_corpus.train = &new_suite->train;
    new_corpus.databases = &new_suite->databases;
    auto new_gred = std::make_shared<core::Gred>(new_corpus, chat);
    Result<std::size_t> prepared =
        new_gred->PrepareAnnotations(new_suite->databases);
    if (!prepared.ok()) return prepared.status();
    serve::EpochPayload payload;
    payload.suite = std::move(new_suite);
    payload.gred = std::move(new_gred);
    return payload;
  };

  serve::Server server(&suite, &gred, options);

  // Graceful drain on SIGTERM/SIGINT: the handler flips g_stop and —
  // registered without SA_RESTART — interrupts the blocking stdin read;
  // ServeStream then closes the queue, answers everything admitted and
  // returns. Requests arriving mid-drain get {"error":"shutting_down"}.
  struct sigaction action = {};
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::fprintf(stderr,
               "[gredvis] serving on stdin/stdout (%zu workers, queue %zu)\n",
               server.options().num_workers, server.options().queue_capacity);
  int rc = server.ServeStream(std::cin, std::cout, &g_stop);
  serve::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "[gredvis] served %llu requests (%llu ok, %llu failed, "
               "%llu invalid, %llu shed, %llu rate-limited, "
               "%llu during drain, %llu browned out, %llu reloads)\n",
               static_cast<unsigned long long>(stats.received),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.failed),
               static_cast<unsigned long long>(stats.rejected_invalid),
               static_cast<unsigned long long>(stats.rejected_overload),
               static_cast<unsigned long long>(stats.rejected_ratelimit),
               static_cast<unsigned long long>(stats.rejected_shutdown),
               static_cast<unsigned long long>(stats.degraded_brownout),
               static_cast<unsigned long long>(stats.reloads_ok));
  if (g_stop.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "[gredvis] drained after signal\n");
  }
  return rc;
}

int CmdEval(const std::string& model_name, const std::string& set_name) {
  dataset::BenchmarkSuite suite = BuildSuite();
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  llm::SimulatedChatModel llm;
  std::unique_ptr<models::TextToVisModel> model;
  if (model_name == "seq2vis") {
    model = std::make_unique<models::Seq2Vis>(corpus);
  } else if (model_name == "transformer") {
    model = std::make_unique<models::TransformerModel>(corpus);
  } else if (model_name == "rgvisnet") {
    model = std::make_unique<models::RGVisNet>(corpus);
  } else if (model_name == "gred") {
    model = std::make_unique<core::Gred>(corpus, &llm);
  } else {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 1;
  }
  const std::vector<dataset::Example>* test = nullptr;
  const std::vector<dataset::GeneratedDatabase>* dbs = nullptr;
  if (set_name == "clean") {
    test = &suite.test_clean;
    dbs = &suite.databases;
  } else if (set_name == "nlq") {
    test = &suite.test_nlq;
    dbs = &suite.databases;
  } else if (set_name == "schema") {
    test = &suite.test_schema;
    dbs = &suite.databases_rob;
  } else if (set_name == "both") {
    test = &suite.test_both;
    dbs = &suite.databases_rob;
  } else {
    std::fprintf(stderr, "unknown test set '%s'\n", set_name.c_str());
    return 1;
  }
  eval::EvalResult result = eval::Evaluate(*model, *test, *dbs, set_name);
  TablePrinter table({"Vis Acc.", "Data Acc.", "Axis Acc.", "Acc.",
                      "Exec Acc."});
  table.AddRow({FormatPercent(result.counts.VisAcc()),
                FormatPercent(result.counts.DataAcc()),
                FormatPercent(result.counts.AxisAcc()),
                FormatPercent(result.counts.OverallAcc()),
                FormatPercent(result.counts.ExecutionAcc())});
  std::printf("%s on %s (%zu examples)\n%s", result.model_name.c_str(),
              set_name.c_str(), result.counts.total,
              table.ToString().c_str());
  return 0;
}

int CmdExport(const std::string& dir) {
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  dataset::BenchmarkSuite suite = BuildSuite();
  struct Split {
    const char* name;
    const std::vector<dataset::Example>* examples;
  };
  const Split kSplits[] = {
      {"train", &suite.train},          {"test_clean", &suite.test_clean},
      {"test_nlq", &suite.test_nlq},    {"test_schema", &suite.test_schema},
      {"test_both", &suite.test_both},
  };
  for (const Split& split : kSplits) {
    std::string path = dir + "/" + split.name + ".json";
    Status status = dataset::WriteJsonFile(
        path, dataset::ExamplesToJson(*split.examples));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu examples)\n", path.c_str(),
                split.examples->size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "stats") return CmdStats();
  if (command == "schema" && argc >= 3) return CmdSchema(argv[2]);
  if (command == "annotate" && argc >= 3) return CmdAnnotate(argv[2]);
  if (command == "translate" && argc >= 4) {
    return CmdTranslate(argv[2], argv[3]);
  }
  if (command == "eval" && argc >= 4) return CmdEval(argv[2], argv[3]);
  if (command == "export" && argc >= 3) return CmdExport(argv[2]);
  if (command == "serve") return CmdServe();
  return Usage();
}
