// dvqlint — schema-aware static analysis of DVQs (DESIGN.md §12, §17).
//
// Lints one or more DVQs against a generated database's schema and
// prints the analyzer's diagnostics (stable DVQ0xx codes, severity,
// structural AST location, fix-it hints) one per line.
//
//   $ ./build/tools/dvqlint hr_1 "Visualize BAR SELECT citty ,
//     COUNT(citty) FROM employees GROUP BY citty"
//   $ ./build/tools/dvqlint --fix hr_1 examples/dvqs/clean.dvq
//   $ echo "Visualize ..." | ./build/tools/dvqlint --json --cost hr_1
//
// Arguments after the database name are DVQ files (one query per line,
// '#' comments ignored) when they name a readable file, inline DVQ text
// otherwise; with neither, queries are read from stdin.
//
// Flags:
//   --werror  warnings count as errors for the exit status
//   --fix     run the static repairer (analysis::DvqRepairer) on each
//             query; prints accepted repair steps and the repaired DVQ.
//             The exit status is computed on the post-repair
//             diagnostics, so it is 0 only when every query converges
//             lint-clean.
//   --cost    price each (post-repair, when --fix) query with the
//             abstract cost estimator (analysis::CostEstimator): a
//             provable upper bound on the executor's charges in exact
//             ExecContext units (ticks / rows / bytes / join rows).
//   --json    machine-readable output: one JSON object per query on
//             stdout (NDJSON) instead of text lines.
//
// Exit status: 0 = no error-level diagnostics (after repair with
// --fix), 1 = at least one error (or, with --werror, warning),
// 2 = usage / unknown database / unparseable DVQ.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/cost_estimator.h"
#include "analysis/repairer.h"
#include "dataset/benchmark.h"
#include "dvq/parser.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using namespace gred;

struct Input {
  std::string origin;  // "file:line" or "arg" / "stdin"
  std::string text;
};

void CollectFromStream(std::istream& in, const std::string& name,
                       std::vector<Input>* out) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string trimmed = strings::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    out->push_back({name + ":" + std::to_string(lineno), trimmed});
  }
}

json::Value DiagnosticsToJson(
    const std::vector<analysis::Diagnostic>& diagnostics) {
  json::Value array = json::Value::Array();
  for (const analysis::Diagnostic& d : diagnostics) {
    json::Value entry = json::Value::Object();
    entry.Set("code", json::Value::Str(analysis::CodeName(d.code)));
    entry.Set("severity",
              json::Value::Str(analysis::SeverityName(d.severity)));
    entry.Set("location", json::Value::Str(d.location.ToString()));
    entry.Set("message", json::Value::Str(d.message));
    if (!d.fixit.empty()) entry.Set("fixit", json::Value::Str(d.fixit));
    array.Append(std::move(entry));
  }
  return array;
}

json::Value CostToJson(const analysis::CostEstimate& cost) {
  json::Value out = json::Value::Object();
  out.Set("ticks", json::Value::Int(static_cast<std::int64_t>(
                       std::min<std::uint64_t>(cost.ticks, INT64_MAX))));
  out.Set("rows", json::Value::Int(static_cast<std::int64_t>(
                      std::min<std::uint64_t>(cost.rows, INT64_MAX))));
  out.Set("bytes", json::Value::Int(static_cast<std::int64_t>(
                       std::min<std::uint64_t>(cost.bytes, INT64_MAX))));
  out.Set("join_rows",
          json::Value::Int(static_cast<std::int64_t>(
              std::min<std::uint64_t>(cost.join_rows, INT64_MAX))));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  bool fix = false;
  bool cost = false;
  bool as_json = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--cost") {
      cost = true;
    } else if (arg == "--json") {
      as_json = true;
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (positional.empty()) {
    std::fprintf(
        stderr,
        "usage: dvqlint [--werror] [--fix] [--cost] [--json] <database> "
        "[dvq-file | dvq]...\n"
        "       (no dvq arguments: queries are read from stdin)\n");
    return 2;
  }
  const std::string& db_name = positional.front();

  std::vector<Input> inputs;
  for (std::size_t i = 1; i < positional.size(); ++i) {
    std::ifstream file(positional[i]);
    if (file.good()) {
      CollectFromStream(file, positional[i], &inputs);
    } else {
      inputs.push_back({"arg", positional[i]});
    }
  }
  if (inputs.empty()) CollectFromStream(std::cin, "stdin", &inputs);
  if (inputs.empty()) {
    std::fprintf(stderr, "no DVQ given\n");
    return 2;
  }

  dataset::BenchmarkOptions options;
  options.train_size = 1;  // databases only; no training pairs needed
  options.test_size = 1;
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  const dataset::GeneratedDatabase* db = suite.FindCleanDb(db_name);
  if (db == nullptr) {
    std::fprintf(stderr, "unknown database '%s'\n", db_name.c_str());
    return 2;
  }

  analysis::DvqAnalyzer analyzer(&db->data.db_schema());
  analysis::DvqRepairer repairer(&db->data.db_schema());
  analysis::CostEstimator estimator(&db->data);
  bool any_error = false;
  std::size_t findings = 0;
  std::size_t repairs = 0;
  for (const Input& input : inputs) {
    Result<dvq::DVQ> parsed = dvq::Parse(input.text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: parse error: %s\n", input.origin.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    std::vector<analysis::Diagnostic> diagnostics =
        analyzer.Analyze(parsed.value());
    findings += diagnostics.size();

    // With --fix the exit status reflects the post-repair diagnostics:
    // a query the repairer converges to lint-clean no longer fails the
    // run. `final` is the DVQ that would actually execute.
    analysis::RepairResult repaired;
    const dvq::DVQ* final_dvq = &parsed.value();
    const std::vector<analysis::Diagnostic>* effective = &diagnostics;
    if (fix) {
      repaired = repairer.Repair(parsed.value());
      repairs += repaired.log.size();
      if (repaired.success) final_dvq = &repaired.dvq;
      effective = &repaired.remaining;
    }
    for (const analysis::Diagnostic& d : *effective) {
      if (d.severity == analysis::Severity::kError ||
          (werror && d.severity == analysis::Severity::kWarning)) {
        any_error = true;
      }
    }

    Result<analysis::CostEstimate> estimate =
        cost ? estimator.Estimate(*final_dvq)
             : Result<analysis::CostEstimate>(analysis::CostEstimate{});

    if (as_json) {
      json::Value out = json::Value::Object();
      out.Set("origin", json::Value::Str(input.origin));
      out.Set("dvq", json::Value::Str(parsed.value().ToString()));
      out.Set("diagnostics", DiagnosticsToJson(diagnostics));
      if (fix) {
        json::Value rep = json::Value::Object();
        rep.Set("success", json::Value::Bool(repaired.success));
        rep.Set("changed", json::Value::Bool(repaired.changed));
        rep.Set("dvq", json::Value::Str(repaired.dvq.ToString()));
        json::Value actions = json::Value::Array();
        for (const analysis::RepairAction& a : repaired.log) {
          actions.Append(json::Value::Str(a.ToString()));
        }
        rep.Set("actions", std::move(actions));
        rep.Set("remaining", DiagnosticsToJson(repaired.remaining));
        out.Set("repair", std::move(rep));
      }
      if (cost) {
        if (estimate.ok()) {
          out.Set("cost", CostToJson(estimate.value()));
        } else {
          out.Set("cost_error",
                  json::Value::Str(estimate.status().message()));
        }
      }
      std::printf("%s\n", out.Dump().c_str());
      continue;
    }

    for (const analysis::Diagnostic& d : diagnostics) {
      std::printf("%s: %s\n", input.origin.c_str(), d.ToString().c_str());
    }
    if (fix) {
      for (const analysis::RepairAction& a : repaired.log) {
        std::printf("%s: fix: %s\n", input.origin.c_str(),
                    a.ToString().c_str());
      }
      if (!repaired.success) {
        std::printf("%s: unrepairable (%zu diagnostic%s remain)\n",
                    input.origin.c_str(), repaired.remaining.size(),
                    repaired.remaining.size() == 1 ? "" : "s");
      } else if (repaired.changed) {
        std::printf("%s: fixed: %s\n", input.origin.c_str(),
                    repaired.dvq.ToString().c_str());
      }
    }
    if (cost) {
      if (estimate.ok()) {
        std::printf("%s: cost: %s\n", input.origin.c_str(),
                    estimate.value().ToString().c_str());
      } else {
        std::printf("%s: cost unavailable: %s\n", input.origin.c_str(),
                    estimate.status().message().c_str());
      }
    }
  }
  std::fprintf(stderr, "%zu quer%s linted, %zu finding%s%s\n", inputs.size(),
               inputs.size() == 1 ? "y" : "ies", findings,
               findings == 1 ? "" : "s",
               fix ? strings::Format(", %zu repair%s", repairs,
                                     repairs == 1 ? "" : "s")
                         .c_str()
                   : "");
  return any_error ? 1 : 0;
}
