// dvqlint — schema-aware static analysis of DVQs (DESIGN.md §12).
//
// Lints one or more DVQs against a generated database's schema and
// prints the analyzer's diagnostics (stable DVQ0xx codes, severity,
// structural AST location, fix-it hints) one per line.
//
//   $ ./build/tools/dvqlint hr_1 "Visualize BAR SELECT citty ,
//     COUNT(citty) FROM employees GROUP BY citty"
//   $ ./build/tools/dvqlint hr_1 examples/dvqs/clean.dvq
//   $ echo "Visualize ..." | ./build/tools/dvqlint hr_1
//
// Arguments after the database name are DVQ files (one query per line,
// '#' comments ignored) when they name a readable file, inline DVQ text
// otherwise; with neither, queries are read from stdin. Exit status:
// 0 = no error-level diagnostics, 1 = at least one error (or, with
// --werror, warning), 2 = usage / unknown database / unparseable DVQ.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "dataset/benchmark.h"
#include "dvq/parser.h"
#include "util/strings.h"

namespace {

using namespace gred;

struct Input {
  std::string origin;  // "file:line" or "arg" / "stdin"
  std::string text;
};

void CollectFromStream(std::istream& in, const std::string& name,
                       std::vector<Input>* out) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string trimmed = strings::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    out->push_back({name + ":" + std::to_string(lineno), trimmed});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--werror") {
      werror = true;
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: dvqlint [--werror] <database> [dvq-file | dvq]...\n"
                 "       (no dvq arguments: queries are read from stdin)\n");
    return 2;
  }
  const std::string& db_name = positional.front();

  std::vector<Input> inputs;
  for (std::size_t i = 1; i < positional.size(); ++i) {
    std::ifstream file(positional[i]);
    if (file.good()) {
      CollectFromStream(file, positional[i], &inputs);
    } else {
      inputs.push_back({"arg", positional[i]});
    }
  }
  if (inputs.empty()) CollectFromStream(std::cin, "stdin", &inputs);
  if (inputs.empty()) {
    std::fprintf(stderr, "no DVQ given\n");
    return 2;
  }

  dataset::BenchmarkOptions options;
  options.train_size = 1;  // databases only; no training pairs needed
  options.test_size = 1;
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  const dataset::GeneratedDatabase* db = suite.FindCleanDb(db_name);
  if (db == nullptr) {
    std::fprintf(stderr, "unknown database '%s'\n", db_name.c_str());
    return 2;
  }

  analysis::DvqAnalyzer analyzer(&db->data.db_schema());
  bool any_error = false;
  std::size_t findings = 0;
  for (const Input& input : inputs) {
    Result<dvq::DVQ> parsed = dvq::Parse(input.text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: parse error: %s\n", input.origin.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    std::vector<analysis::Diagnostic> diagnostics =
        analyzer.Analyze(parsed.value());
    findings += diagnostics.size();
    for (const analysis::Diagnostic& d : diagnostics) {
      std::printf("%s: %s\n", input.origin.c_str(), d.ToString().c_str());
      if (d.severity == analysis::Severity::kError ||
          (werror && d.severity == analysis::Severity::kWarning)) {
        any_error = true;
      }
    }
  }
  std::fprintf(stderr, "%zu quer%s linted, %zu finding%s\n", inputs.size(),
               inputs.size() == 1 ? "y" : "ies", findings,
               findings == 1 ? "" : "s");
  return any_error ? 1 : 0;
}
