// Developer diagnostic: prints target vs model predictions (with
// component-match flags) for a sample of test examples.
//
// Usage: inspect [test_set] [count]
//   test_set: clean | nlq | schema | both   (default clean)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.h"
#include "dvq/components.h"

int main(int argc, char** argv) {
  std::string set_name = argc > 1 ? argv[1] : "clean";
  std::size_t count = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2]))
                               : 10;
  gred::bench::BenchContext context;
  const gred::dataset::BenchmarkSuite& suite = context.suite();
  const std::vector<gred::dataset::Example>* test = &suite.test_clean;
  const std::vector<gred::dataset::GeneratedDatabase>* dbs =
      &suite.databases;
  if (set_name == "nlq") {
    test = &suite.test_nlq;
  } else if (set_name == "schema") {
    test = &suite.test_schema;
    dbs = &suite.databases_rob;
  } else if (set_name == "both") {
    test = &suite.test_both;
    dbs = &suite.databases_rob;
  }

  std::vector<const gred::models::TextToVisModel*> models =
      context.Baselines();
  models.push_back(&context.gred());

  for (std::size_t i = 0; i < count && i < test->size(); ++i) {
    const gred::dataset::Example& ex = (*test)[i];
    const gred::dataset::GeneratedDatabase* db = nullptr;
    for (const auto& candidate : *dbs) {
      if (candidate.data.name() == ex.db_name) db = &candidate;
    }
    std::printf("=== %s (db=%s, %s)\nNLQ: %s\nTGT: %s\n", ex.id.c_str(),
                ex.db_name.c_str(),
                gred::dataset::HardnessName(ex.hardness), ex.nlq.c_str(),
                ex.DvqText().c_str());
    for (const auto* model : models) {
      gred::Result<gred::dvq::DVQ> pred =
          model->Translate(ex.nlq, db->data);
      if (!pred.ok()) {
        std::printf("%-12s ERROR %s\n", model->name().c_str(),
                    pred.status().ToString().c_str());
        continue;
      }
      bool vis = gred::dvq::VisMatch(pred.value(), ex.dvq);
      bool axis = gred::dvq::AxisMatch(pred.value(), ex.dvq);
      bool data = gred::dvq::DataMatch(pred.value(), ex.dvq);
      std::printf("%-12s [%c%c%c] %s\n", model->name().c_str(),
                  vis ? 'V' : '.', axis ? 'A' : '.', data ? 'D' : '.',
                  pred.value().ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
